"""Golden-trace regression for the ``fair``, ``fifo`` and ``tcp`` transports.

A deterministic mixed workload — broadcast bursts, staggered unicasts,
zero-size control messages, a throttling window, a mid-run link replacement,
and transfers that time out — is driven through :class:`SimNetwork` and every
externally observable transport event (delivery, timeout) is recorded with
its full-precision virtual timestamp.  The resulting event streams are
committed under ``tests/data/`` and must reproduce *byte-identically*, once
per shared-scheduler engine:

* ``golden_transport_{fair,fifo,tcp}.json`` — the default **lazy** engine
  (GOLDEN format 2, the lazy-advance scheduler of
  :mod:`repro.simnet.shared_sched`);
* ``golden_transport_{fair,fifo,tcp}_legacy.json`` — the **legacy**
  global-recompute engine.  The fair/fifo files are the *original pre-lazy
  goldens*, unchanged since the models were extracted from the monolith:
  they prove the legacy loop still produces the historical trajectory,
  which is what makes it a valid conformance anchor for the lazy engine.
  The tcp files pin each engine independently — tcp's window dynamics
  advance at exact ack-tick instants on the lazy engine but fold into
  recompute events on the legacy one, so the two trajectories differ by
  design and each needs its own anchor.
* ``golden_transport_tcp_vector.json`` — the **vector** engine's tcp
  trajectory (numpy-gated).  The vector engine advances whole due cohorts
  per wake, which lands ack ticks on slightly different instants than the
  lazy engine's per-flow events, so tcp's third engine also needs its own
  anchor.  fair/fifo need no vector golden: their vector trajectories are
  conformance-checked against lazy in ``test_vector_sched.py`` instead.

GOLDEN version history: format 1 (implicit, no marker) pinned the legacy
engine's trajectory as the default; format 2 pins the lazy engine's (the
rebaseline is deliberate — lazy progress accumulation chips ``remaining``
at rate changes only, which shifts float rounding; old-vs-new equivalence
is enforced separately by ``tests/simnet/test_shared_sched.py``).

A protocol-level golden (one full ``fifo`` consensus run summary, one file
per engine) rides along so the fifo model is pinned end-to-end, not just at
transport level.

To intentionally re-baseline after a *deliberate* semantic change:

    PYTHONPATH=src python tests/simnet/test_transport_golden.py regenerate

(regenerates the lazy *and* legacy files — say so loudly in the PR and bump
GOLDEN_FORMAT if the lazy trajectory moved on purpose).
"""

import json
import random
import sys
from pathlib import Path

import pytest

from repro.simnet.bandwidth import BandwidthSchedule
from repro.simnet.flows import use_shared_engine
from repro.simnet.message import Message
from repro.simnet.network import LinkConfig, SimNetwork
from repro.simnet.node import ProtocolNode

DATA_DIR = Path(__file__).resolve().parent.parent / "data"
GOLDEN_TRANSPORTS = ("fair", "fifo", "tcp")
GOLDEN_ENGINES = ("lazy", "legacy")

#: (transport, engine) pairs pinned beyond the lazy/legacy grid: tcp's
#: vector-engine trajectory differs by design (cohort ack ticks) and gets
#: its own numpy-gated anchor.
VECTOR_GOLDEN_TRANSPORTS = ("tcp",)

#: Format of the lazy-engine golden records ("golden_format" key); the
#: legacy files predate the marker and are pinned without one.
GOLDEN_FORMAT = 2

#: Per-node symmetric link capacities for the workload (Mbit/s).
_NODE_MBPS = {"a": 8.0, "b": 16.0, "c": 4.0, "d": 8.0, "e": 2.0}


class _Recorder(ProtocolNode):
    """Node that appends every delivery to a shared event list."""

    def __init__(self, name, events):
        super().__init__(name)
        self._events = events

    def on_message(self, message, now):
        self._events.append(
            ["deliver", message.msg_type, message.sender, self.name, message.size_bytes, now]
        )


def golden_path(transport: str, engine: str) -> Path:
    suffix = "" if engine == "lazy" else "_%s" % engine
    return DATA_DIR / ("golden_transport_%s%s.json" % (transport, suffix))


def fifo_run_path(engine: str) -> Path:
    suffix = "" if engine == "lazy" else "_legacy"
    return DATA_DIR / ("golden_fifo_run%s.json" % suffix)


def run_transport_workload(transport: str) -> dict:
    """Drive the canonical workload and return its full event record."""
    network = SimNetwork(transport=transport, default_latency_s=0.03)
    events = []
    for name, mbps in _NODE_MBPS.items():
        schedule = BandwidthSchedule.constant_mbps(mbps)
        if name == "e":
            # A DDoS-style throttling window: ~zero capacity on [5, 15).
            schedule = schedule.with_window_mbps(5.0, 15.0, 0.05)
        network.add_node(_Recorder(name, events), LinkConfig.symmetric(schedule))
    names = list(_NODE_MBPS)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            network.set_latency(a, b, (ord(a) + ord(b)) % 7 * 0.01 + 0.02)

    def on_timeout(message, dst):
        events.append(
            ["timeout", message.msg_type, message.sender, dst, message.size_bytes, network.simulator.now]
        )

    def send(src, dst, msg_type, size, timeout=None):
        network.send(
            src, dst, Message(msg_type=msg_type, size_bytes=size),
            timeout=timeout, on_timeout=on_timeout,
        )

    simulator = network.simulator
    # A broadcast burst, competing unicasts, a zero-size control message.
    for dst in ("b", "c", "d", "e"):
        simulator.schedule(0.0, send, "a", dst, "DOC", 300_000, 40.0)
    simulator.schedule(0.0, send, "b", "a", "VOTE", 50_000)
    simulator.schedule(0.5, send, "c", "e", "DOC", 200_000, 30.0)
    # Times out: destination "e" is throttled to ~zero during [5, 15).
    simulator.schedule(1.0, send, "d", "e", "PKG", 2_000_000, 12.0)
    simulator.schedule(2.0, send, "e", "a", "VOTE", 100_000)
    simulator.schedule(3.0, send, "b", "c", "PING", 0)
    # Mid-run link replacement (how attack schedules are applied live).
    simulator.schedule(4.0, network.set_link, "b", LinkConfig.symmetric_mbps(1.0))
    simulator.schedule(4.5, send, "b", "d", "DOC", 500_000)

    # A seeded stagger of cross-traffic over every link pair.
    rng = random.Random(1234)
    for _ in range(20):
        src, dst = rng.sample(names, 2)
        at = rng.uniform(6.0, 30.0)
        size = rng.randrange(10_000, 400_000)
        timeout = rng.choice([None, 8.0])
        simulator.schedule(at, send, src, dst, "DATA", size, timeout)

    network.run(until=200.0)
    stats = network.stats
    return {
        "transport": transport,
        "events": events,
        "stats": {
            "bytes_sent": dict(stats.bytes_sent),
            "bytes_delivered": dict(stats.bytes_delivered),
            "bytes_by_type": dict(stats.bytes_by_type),
            "messages_sent": stats.messages_sent,
            "messages_delivered": stats.messages_delivered,
            "messages_timed_out": stats.messages_timed_out,
        },
    }


def _record_for(transport: str, engine: str) -> dict:
    with use_shared_engine(engine):
        record = run_transport_workload(transport)
    if engine != "legacy":  # the legacy files predate the format marker
        record["golden_format"] = GOLDEN_FORMAT
    return record


def _fifo_run_spec():
    from repro.runtime.spec import RunSpec

    return RunSpec(
        protocol="current",
        relay_count=40,
        authority_count=5,
        seed=11,
        max_time=700.0,
        transport="fifo",
    )


@pytest.mark.parametrize("engine", GOLDEN_ENGINES)
@pytest.mark.parametrize("transport", GOLDEN_TRANSPORTS)
def test_transport_workload_reproduces_the_golden_trace_exactly(transport, engine):
    golden = json.loads(golden_path(transport, engine).read_text())
    assert _record_for(transport, engine) == golden


@pytest.mark.parametrize("transport", VECTOR_GOLDEN_TRANSPORTS)
def test_vector_transport_workload_reproduces_the_golden_trace_exactly(transport):
    from repro.simnet.vector_sched import vector_available

    if not vector_available():
        pytest.skip("vector engine needs numpy; downgrade path covered elsewhere")
    golden = json.loads(golden_path(transport, "vector").read_text())
    assert _record_for(transport, "vector") == golden


@pytest.mark.parametrize("engine", GOLDEN_ENGINES)
def test_fifo_protocol_run_reproduces_the_golden_summary_exactly(engine):
    from repro.protocols.runner import execute_spec
    from repro.runtime.spec import RunSpec

    entry = json.loads(fifo_run_path(engine).read_text())
    spec = RunSpec.from_dict(entry["spec"])
    assert spec == _fifo_run_spec()
    with use_shared_engine(engine):
        summary = execute_spec(spec).summary()
    assert summary == entry["summary"]


def regenerate() -> None:  # pragma: no cover - maintenance entry point
    from repro.protocols.runner import execute_spec

    from repro.simnet.vector_sched import vector_available

    for engine in GOLDEN_ENGINES:
        for transport in GOLDEN_TRANSPORTS:
            record = _record_for(transport, engine)
            path = golden_path(transport, engine)
            path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
            print("rebaselined", path)
    if vector_available():
        for transport in VECTOR_GOLDEN_TRANSPORTS:
            record = _record_for(transport, "vector")
            path = golden_path(transport, "vector")
            path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
            print("rebaselined", path)
    for engine in GOLDEN_ENGINES:
        spec = _fifo_run_spec()
        with use_shared_engine(engine):
            summary = execute_spec(spec).summary()
        fifo_run_path(engine).write_text(
            json.dumps({"spec": spec.to_dict(), "summary": summary}, indent=2, sort_keys=True)
            + "\n"
        )
        print("rebaselined", fifo_run_path(engine))


if __name__ == "__main__" and "regenerate" in sys.argv[1:]:  # pragma: no cover
    regenerate()
