"""Link-model layer tests: registry, rate policies, scheduler selection."""

import pytest

from repro.simnet.flows import (
    Flow,
    IndependentFlowScheduler,
    SharedLinkScheduler,
    make_flow_scheduler,
)
from repro.simnet.linkmodel import (
    FairShareLinkModel,
    FifoLinkModel,
    LatencyOnlyLinkModel,
    LinkModel,
    TcpLinkModel,
    get_link_model,
    link_model_names,
    register_link_model,
)
from repro.simnet.message import Message
from repro.simnet.network import LinkConfig, SimNetwork
from repro.utils.validation import ValidationError


def make_flow(flow_id, src, dst, size=1_000_000):
    return Flow(
        flow_id=flow_id,
        src=src,
        dst=dst,
        message=Message(msg_type="DOC", size_bytes=size),
        start_time=0.0,
        deadline=None,
        on_timeout=None,
        on_delivered=None,
    )


def links_for(mbps_by_node):
    return {name: LinkConfig.symmetric_mbps(mbps) for name, mbps in mbps_by_node.items()}


# -- registry ------------------------------------------------------------------

def test_registry_knows_the_four_shipped_models():
    assert set(link_model_names()) >= {"fair", "fifo", "tcp", "latency-only"}
    assert isinstance(get_link_model("fair"), FairShareLinkModel)
    assert isinstance(get_link_model("fifo"), FifoLinkModel)
    assert isinstance(get_link_model("tcp"), TcpLinkModel)
    assert isinstance(get_link_model("latency-only"), LatencyOnlyLinkModel)


def test_unknown_transport_is_rejected_with_the_known_names():
    with pytest.raises(ValidationError) as excinfo:
        get_link_model("weighted")
    assert "fair" in str(excinfo.value)
    # The error enumerates every registered model, the new tcp one included.
    assert "tcp" in str(excinfo.value)
    assert "latency-only" in str(excinfo.value)


def test_registering_a_custom_model_and_name_collisions():
    class WeightedModel(LinkModel):
        name = "test-weighted"
        shared = False

        def flow_rate(self, flow, links, now):
            return 1.0

    try:
        register_link_model(WeightedModel)
        assert "test-weighted" in link_model_names()
        # Re-registering the same class is idempotent...
        register_link_model(WeightedModel)

        class Impostor(LinkModel):
            name = "test-weighted"

        # ...but a different class may not steal the name.
        with pytest.raises(ValidationError):
            register_link_model(Impostor)
        # A registered model is constructible through SimNetwork.
        network = SimNetwork(transport="test-weighted")
        assert network.transport_name == "test-weighted"
    finally:
        from repro.simnet.linkmodel import LINK_MODELS

        LINK_MODELS.pop("test-weighted", None)


def test_nameless_models_are_rejected():
    class Nameless(LinkModel):
        pass

    with pytest.raises(ValidationError):
        register_link_model(Nameless)


def test_scheduler_selection_follows_the_coupling_flag_and_engine():
    from repro.simnet.shared_sched import LazySharedLinkScheduler

    links = {}
    # Shared models with a lazy rater default to the lazy engine...
    for name in ("fair", "fifo"):
        sched = make_flow_scheduler(get_link_model(name), None, links, None, None)
        assert isinstance(sched, LazySharedLinkScheduler)
    # ...the legacy engine stays selectable (flag and environment)...
    sched = make_flow_scheduler(
        get_link_model("fair"), None, links, None, None, shared_engine="legacy"
    )
    assert isinstance(sched, SharedLinkScheduler)
    from repro.simnet.flows import use_shared_engine

    with use_shared_engine("legacy"):
        sched = make_flow_scheduler(get_link_model("fair"), None, links, None, None)
        assert isinstance(sched, SharedLinkScheduler)
    # ...and uncoupled models keep per-flow scheduling.
    sched = make_flow_scheduler(get_link_model("latency-only"), None, links, None, None)
    assert isinstance(sched, IndependentFlowScheduler)


def test_shared_models_without_a_lazy_rater_fall_back_to_the_legacy_engine():
    class OpaqueShared(LinkModel):
        name = "test-opaque-shared"
        shared = True

        def assign_rates(self, flows, links, now, affected=None, up_counts=None, down_counts=None):
            for flow in flows.values():
                flow.rate = 1.0

    sched = make_flow_scheduler(OpaqueShared(), None, {}, None, None)
    assert isinstance(sched, SharedLinkScheduler)


def test_unknown_shared_engine_is_rejected():
    with pytest.raises(ValidationError):
        make_flow_scheduler(
            get_link_model("fair"), None, {}, None, None, shared_engine="eager"
        )


# -- rate policies -------------------------------------------------------------

def test_fair_model_splits_each_link_equally():
    model = FairShareLinkModel()
    links = links_for({"a": 8.0, "b": 8.0, "c": 8.0})  # 1 MB/s each
    flows = {1: make_flow(1, "a", "b"), 2: make_flow(2, "a", "c")}
    model.assign_rates(flows, links, now=0.0)
    # Two flows share a's uplink: 500 kB/s each; downlinks are uncontended.
    assert flows[1].rate == pytest.approx(500_000.0)
    assert flows[2].rate == pytest.approx(500_000.0)


def test_fair_model_scoped_assignment_matches_full_recompute():
    model = FairShareLinkModel()
    links = links_for({"a": 8.0, "b": 8.0, "c": 4.0, "d": 2.0})
    flows = {
        1: make_flow(1, "a", "b"),
        2: make_flow(2, "a", "c"),
        3: make_flow(3, "d", "b"),
        4: make_flow(4, "c", "d"),
    }
    model.assign_rates(flows, links, now=0.0)
    full = {fid: flow.rate for fid, flow in flows.items()}

    by_src, by_dst = {}, {}
    for flow in flows.values():
        by_src.setdefault(flow.src, {})[flow.flow_id] = flow
        by_dst.setdefault(flow.dst, {})[flow.flow_id] = flow

    class Counts:
        def __init__(self, index):
            self.index = index

        def __getitem__(self, name):
            return len(self.index[name])

    for flow in flows.values():
        flow.rate = -1.0
    model.assign_rates(
        flows,
        links,
        now=0.0,
        affected=list(flows.values()),
        up_counts=Counts(by_src),
        down_counts=Counts(by_dst),
    )
    assert {fid: flow.rate for fid, flow in flows.items()} == full


def test_fifo_model_serves_one_flow_per_uplink():
    model = FifoLinkModel()
    links = links_for({"a": 8.0, "b": 8.0, "c": 8.0})
    flows = {1: make_flow(1, "a", "b"), 2: make_flow(2, "a", "c")}
    model.assign_rates(flows, links, now=0.0)
    assert flows[1].rate == pytest.approx(1_000_000.0)  # oldest gets full rate
    assert flows[2].rate == 0.0  # queued behind it


def test_fifo_model_orders_by_arrival_seq_not_flow_id():
    # A flow with a *smaller* id but a *later* arrival stamp must queue
    # behind the earlier arrival: FIFO service is defined over the
    # scheduler-stamped arrival_seq, never over how ids happen to be
    # assigned.
    model = FifoLinkModel()
    links = links_for({"a": 8.0, "b": 8.0, "c": 8.0})
    first = make_flow(90, "a", "b")
    second = make_flow(10, "a", "c")
    first.arrival_seq = 0
    second.arrival_seq = 1
    model.assign_rates({90: first, 10: second}, links, now=0.0)
    assert first.rate == pytest.approx(1_000_000.0)
    assert second.rate == 0.0


def _fifo_network_engines():
    engines = ["lazy", "legacy"]
    from repro.simnet.vector_sched import vector_available

    if vector_available():
        engines.append("vector")
    return engines


@pytest.mark.parametrize("engine", _fifo_network_engines())
def test_fifo_scheduler_serves_flows_started_out_of_id_order(engine):
    # Start flows whose ids *descend* (as a future id source that recycles
    # or reorders ids could produce): every engine must serve them in start
    # order, because the scheduler stamps arrival_seq in _add.
    from repro.simnet.node import ProtocolNode

    deliveries = []

    class Sink(ProtocolNode):
        def on_message(self, message, now):
            deliveries.append((message.msg_type, now))

    network = SimNetwork(transport="fifo", default_latency_s=0.0, shared_engine=engine)
    for name in ("a", "b", "c"):
        network.add_node(Sink(name), LinkConfig.symmetric_mbps(8.0))  # 1 MB/s
    scheduler = network._scheduler

    def start(flow_id, msg_type, dst):
        flow = make_flow(flow_id, "a", dst, size=1_000_000)
        flow.message.msg_type = msg_type
        flow.message.sender = "a"
        scheduler.start_flow(flow, network.simulator.now)

    network.simulator.schedule(0.0, start, 90, "FIRST", "b")
    network.simulator.schedule(0.5, start, 10, "SECOND", "c")
    network.run(until=30.0)
    assert [kind for kind, _ in deliveries] == ["FIRST", "SECOND"]
    # Strict serial service: SECOND only starts once FIRST finishes at t=1.
    assert deliveries[0][1] == pytest.approx(1.0)
    assert deliveries[1][1] == pytest.approx(2.0)


def test_latency_only_model_gives_every_flow_the_full_min_capacity():
    model = LatencyOnlyLinkModel()
    assert model.shared is False
    links = links_for({"a": 8.0, "b": 4.0})
    flow = make_flow(1, "a", "b")
    # min(1 MB/s uplink, 500 kB/s downlink) regardless of other flows.
    assert model.flow_rate(flow, links, 0.0) == pytest.approx(500_000.0)
