"""Broadcast fast-path conformance: batched dispatch vs the reference path.

``REPRO_BATCH_DISPATCH=off`` restores the exact pre-batching trajectory —
one ``send`` per destination, one delivery event per message — so the fast
path (``send_many`` admission, batched lazy flow starts, coalesced
same-instant deliveries) is checked against it at two levels:

* **Summary equality to float tolerance.**  The batched path changes which
  pending-event serials stale re-aims consume, which permutes same-instant
  tie-breaks; final rates are a pure function of final link occupancy, so
  everything integer (success, digests, signature counts, message counts,
  byte accounting) must agree **exactly**, and derived times to 1-ulp-level
  float tolerance.  Hypothesis drives seeds and sizes across all three
  protocols and the shared engines.
* **Mechanism units.**  ``Simulator.schedule_batch`` drains in append order
  and survives re-entrant appends; ``start_flows`` on the lazy engine
  allocates the same flow ids and lands the same final rates as the
  sequential loop; ``SharedPayload`` prices a message once and unwraps.
"""

import math
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime.spec import RunSpec
from repro.simnet.engine import Simulator
from repro.simnet.flows import Flow, make_flow_scheduler, use_shared_engine
from repro.simnet.linkmodel import FairShareLinkModel
from repro.simnet.message import Message, SharedPayload
from repro.simnet.network import (
    BATCH_DISPATCH_ENV,
    LinkConfig,
    SimNetwork,
    batch_dispatch_enabled,
)
from repro.simnet.node import ProtocolNode
from repro.utils import phases

#: Tolerance for derived time metrics: the batched path re-bases residual
#: arithmetic differently from stale-event re-aims (algebraically equal,
#: not bit-equal), so completion/latency floats may drift by ~1 ulp.
REL_TOLERANCE = 1e-9

#: Outcome fields that must match exactly across dispatch paths.
EXACT_OUTCOME_KEYS = (
    "authority_id",
    "success",
    "consensus_digest",
    "signature_count",
    "votes_held",
    "failure_reason",
)

#: Outcome fields compared to float tolerance.
FLOAT_OUTCOME_KEYS = ("completion_time", "network_latency")


def run_summary(spec: RunSpec, batch: str) -> dict:
    from repro.protocols.runner import execute_spec

    previous = os.environ.get(BATCH_DISPATCH_ENV)
    os.environ[BATCH_DISPATCH_ENV] = batch
    try:
        return execute_spec(spec).summary()
    finally:
        if previous is None:
            del os.environ[BATCH_DISPATCH_ENV]
        else:
            os.environ[BATCH_DISPATCH_ENV] = previous


def assert_summaries_conformant(batched: dict, reference: dict) -> None:
    for key in ("version", "protocol", "success", "relay_count", "start_time"):
        assert batched[key] == reference[key], key
    assert batched["stats"] == reference["stats"]
    assert batched["faults"] == reference["faults"]
    assert batched["clients"] == reference["clients"]
    for key in ("latency", "end_time"):
        a, b = batched[key], reference[key]
        if a is None or b is None:
            assert a == b, (key, a, b)
        else:
            assert math.isclose(a, b, rel_tol=REL_TOLERANCE, abs_tol=1e-9), (key, a, b)
    assert len(batched["outcomes"]) == len(reference["outcomes"])
    for ours, theirs in zip(batched["outcomes"], reference["outcomes"]):
        for key in EXACT_OUTCOME_KEYS:
            assert ours[key] == theirs[key], (key, ours[key], theirs[key])
        for key in FLOAT_OUTCOME_KEYS:
            a, b = ours[key], theirs[key]
            if a is None or b is None:
                assert a == b, (key, a, b)
            else:
                assert math.isclose(a, b, rel_tol=REL_TOLERANCE, abs_tol=1e-9), (
                    key,
                    a,
                    b,
                )


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    protocol=st.sampled_from(("current", "ours", "synchronous")),
    authorities=st.sampled_from((5, 9, 13)),
    transport=st.sampled_from(("fair", "fifo", "latency-only")),
    engine=st.sampled_from(("lazy", "legacy", "vector")),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_batched_dispatch_summary_conformance(
    protocol, authorities, transport, engine, seed
):
    spec = RunSpec(
        protocol=protocol,
        relay_count=25,
        authority_count=authorities,
        seed=seed,
        transport=transport,
        max_time=600.0,
    )
    with use_shared_engine(engine):
        batched = run_summary(spec, "on")
        reference = run_summary(spec, "off")
    assert_summaries_conformant(batched, reference)


def test_batch_dispatch_env_resolution():
    previous = os.environ.pop(BATCH_DISPATCH_ENV, None)
    try:
        assert batch_dispatch_enabled()
        os.environ[BATCH_DISPATCH_ENV] = "off"
        assert not batch_dispatch_enabled()
        os.environ[BATCH_DISPATCH_ENV] = "on"
        assert batch_dispatch_enabled()
    finally:
        if previous is None:
            os.environ.pop(BATCH_DISPATCH_ENV, None)
        else:
            os.environ[BATCH_DISPATCH_ENV] = previous


# -- schedule_batch mechanism ------------------------------------------------


def test_schedule_batch_drains_in_append_order():
    simulator = Simulator()
    drained = []
    for item in ("a", "b", "c"):
        simulator.schedule_batch(1.0, "node", drained.extend, item)
    simulator.schedule_batch(1.0, "other", drained.extend, "x")
    simulator.run()
    # Same (time, key) appends coalesce into one drain, preserving order;
    # the distinct key drains separately.
    assert drained == ["a", "b", "c", "x"]


def test_schedule_batch_distinct_times_do_not_coalesce():
    simulator = Simulator()
    drained = []
    simulator.schedule_batch(2.0, "n", drained.append, "late")
    simulator.schedule_batch(1.0, "n", drained.append, "early")
    simulator.run()
    assert drained == [["early"], ["late"]]


def test_schedule_batch_reentrant_append_creates_fresh_batch():
    simulator = Simulator()
    drained = []

    def drain(items):
        drained.append(list(items))
        if len(drained) == 1:
            # Appending for the same slot *during* the drain must start a
            # fresh batch (the old one was popped), not resurrect the one
            # being drained.
            simulator.schedule_batch(simulator.now, "n", drain, "again")

    simulator.schedule_batch(0.5, "n", drain, "first")
    simulator.run()
    assert drained == [["first"], ["again"]]


# -- batched flow starts on the lazy engine ---------------------------------


def _lazy_fixture():
    simulator = Simulator()
    links = {name: LinkConfig.symmetric_mbps(8.0) for name in ("a", "b", "c", "d")}
    scheduler = make_flow_scheduler(
        FairShareLinkModel(),
        simulator,
        links,
        complete=lambda flow: None,
        expire=lambda flow: None,
        shared_engine="lazy",
    )
    return simulator, scheduler


def _mk_flow(simulator, src, dst, size=1_000_000):
    return Flow(
        flow_id=simulator.next_serial(),
        src=src,
        dst=dst,
        message=Message(msg_type="T", size_bytes=size),
        start_time=0.0,
        deadline=None,
        on_timeout=None,
        on_delivered=None,
    )


def test_start_flows_matches_sequential_rates():
    sim_a, sched_a = _lazy_fixture()
    flows_a = [_mk_flow(sim_a, "a", dst) for dst in ("b", "c", "d")]
    for flow in flows_a:
        sched_a.start_flow(flow, now=0.0)

    sim_b, sched_b = _lazy_fixture()
    flows_b = [_mk_flow(sim_b, "a", dst) for dst in ("b", "c", "d")]
    sched_b.start_flows(flows_b, now=0.0)

    assert [f.flow_id for f in flows_b] == [f.flow_id for f in flows_a]
    # Rates are a pure function of final occupancy: the uplink of "a" is
    # shared three ways either way.
    assert [f.rate for f in flows_b] == [f.rate for f in flows_a]


def test_start_flows_single_flow_delegates():
    simulator, scheduler = _lazy_fixture()
    flow = _mk_flow(simulator, "a", "b")
    scheduler.start_flows([flow], now=0.0)
    assert flow.rate > 0.0


# -- shared payload flyweight ------------------------------------------------


def test_shared_payload_sizes_message_once_and_unwraps():
    calls = []

    class Priced:
        @property
        def size_bytes(self):
            calls.append(1)
            return 4096

    payload = Priced()
    handle = SharedPayload(payload, payload.size_bytes)
    messages = [Message(msg_type="T", payload=handle) for _ in range(5)]
    assert len(calls) == 1
    assert all(message.size_bytes == 4096 for message in messages)
    assert all(message.payload is payload for message in messages)


def test_shared_payload_rejects_negative_size():
    with pytest.raises(Exception):
        SharedPayload(object(), -1)


# -- broadcast_message plumbing ----------------------------------------------


class _Recorder(ProtocolNode):
    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def on_message(self, message, now):
        self.received.append((message.msg_type, message.payload, now))


def _network(batch):
    previous = os.environ.get(BATCH_DISPATCH_ENV)
    os.environ[BATCH_DISPATCH_ENV] = batch
    try:
        network = SimNetwork(Simulator())
    finally:
        if previous is None:
            del os.environ[BATCH_DISPATCH_ENV]
        else:
            os.environ[BATCH_DISPATCH_ENV] = previous
    nodes = [_Recorder("n%d" % index) for index in range(4)]
    for node in nodes:
        network.add_node(node, LinkConfig.symmetric_mbps(10.0))
    return network, nodes


@pytest.mark.parametrize("batch", ["on", "off"])
def test_broadcast_message_reaches_every_peer(batch):
    network, nodes = _network(batch)
    sender = nodes[0]
    sender.broadcast_message(Message(msg_type="HELLO", payload="x", size_bytes=512))
    network.simulator.run()
    for node in nodes[1:]:
        assert [entry[0] for entry in node.received] == ["HELLO"]
        assert all(entry[1] == "x" for entry in node.received)
    assert sender.received == []


def test_broadcast_message_respects_targets():
    network, nodes = _network("on")
    nodes[0].broadcast_message(
        Message(msg_type="HELLO", size_bytes=256), targets=["n2"]
    )
    network.simulator.run()
    assert [entry[0] for entry in nodes[2].received] == ["HELLO"]
    assert nodes[1].received == []
    assert nodes[3].received == []


def test_send_many_returns_flow_ids_matching_sequential_send():
    network_a, nodes_a = _network("on")
    ids_batched = network_a.send_many(
        "n0",
        ["n1", "n2", "n3"],
        Message(msg_type="M", size_bytes=100_000),
    )
    network_b, nodes_b = _network("off")
    ids_loop = network_b.send_many(
        "n0",
        ["n1", "n2", "n3"],
        Message(msg_type="M", size_bytes=100_000),
    )
    # Ids are identities, not trajectory: the sequential path interleaves
    # per-send event serials between flow-id allocations, the batched path
    # allocates the burst's ids consecutively.  Both must hand back one
    # distinct id per destination, in destination order.
    assert len(ids_batched) == len(ids_loop) == 3
    assert len(set(ids_batched)) == 3
    assert ids_batched == sorted(ids_batched)
    network_a.simulator.run()
    network_b.simulator.run()
    for node_a, node_b in zip(nodes_a, nodes_b):
        assert len(node_a.received) == len(node_b.received)


# -- phase accounting --------------------------------------------------------


def test_phases_disabled_by_default_and_exclusive_accounting():
    assert not phases.ENABLED
    with phases.measuring():
        phases.enter(phases.TRANSPORT)
        phases.enter(phases.PROTOCOL)
        phases.leave()
        phases.leave()
        buckets = phases.snapshot()
    assert set(buckets) == {phases.TRANSPORT, phases.PROTOCOL}
    assert all(value >= 0.0 for value in buckets.values())
    assert not phases.ENABLED
    phases.reset()


def test_phases_profile_includes_other_and_sums_to_wall():
    def work():
        phases.enter(phases.CRYPTO)
        phases.leave()
        return 42

    result, buckets, wall = phases.profile(work)
    assert result == 42
    assert "other" in buckets
    assert sum(buckets.values()) <= wall + 1e-6


def test_phases_instrumented_run_attributes_buckets():
    from repro.protocols.runner import execute_spec

    spec = RunSpec(
        protocol="current",
        relay_count=20,
        authority_count=5,
        seed=3,
        transport="fair",
        max_time=600.0,
    )
    result, buckets, wall = phases.profile(execute_spec, spec)
    assert result.success
    assert buckets.get(phases.TRANSPORT, 0.0) > 0.0
    assert buckets.get(phases.PROTOCOL, 0.0) > 0.0
    assert phases.non_transport_total(buckets) < wall
