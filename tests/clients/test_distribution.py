"""Distribution-layer behaviour: hooks, serving, mirrors, state accounting."""

import pytest

from repro.clients.workload import ClientWorkload
from repro.protocols.runner import execute_spec
from repro.runtime.spec import BandwidthOverride, RunSpec


def small_spec(**workload_kwargs):
    defaults = dict(
        population=40,
        cohort_count=4,
        arrival="deterministic",
        wave_interval_s=20.0,
        retry_backoff_s=30.0,
    )
    defaults.update(workload_kwargs)
    return RunSpec(
        protocol="current",
        relay_count=30,
        authority_count=5,
        max_time=900.0,
        client_workload=ClientWorkload(**defaults),
    )


def client_block(spec):
    return execute_spec(spec).client_summary


def test_runs_without_a_workload_have_an_empty_clients_block():
    result = execute_spec(RunSpec(protocol="current", relay_count=30, max_time=700.0))
    assert result.client_summary == {}
    assert result.summary()["clients"] == {}


def test_clients_fetch_the_signed_consensus_after_publication():
    clients = client_block(small_spec())
    assert clients["population"] == 40
    assert clients["cohorts"] == 4
    # The current protocol publishes at the end of round 4 (600 s); every
    # attempt before that is answered "not ready", after it clients converge.
    assert clients["first_publish_time_s"] == pytest.approx(600.0)
    assert clients["states"]["fresh"] == 40
    assert clients["fresh_fraction"] == 1.0
    assert clients["fetch_not_ready"] > 0
    assert clients["time_to_fresh_p50_s"] > 600.0
    # Time-to-fresh and staleness coincide while everyone starts stale and
    # ends fresh.
    assert clients["mean_staleness_s"] == pytest.approx(
        clients["time_to_fresh_p50_s"], rel=0.2
    )


def test_state_counts_always_partition_the_population():
    for spec in (
        small_spec(),
        small_spec(arrival="poisson", fetch_interval_s=60.0),
        small_spec(mirror_count=2),
    ):
        clients = client_block(spec)
        assert sum(clients["states"].values()) == clients["population"]
        assert clients["fetch_successes"] <= clients["fetch_attempts"]
        assert (
            clients["fetch_successes"]
            + clients["fetch_timeouts"]
            + clients["fetch_not_ready"]
            <= clients["fetch_attempts"]
        )


def test_mirror_tier_obtains_and_serves_the_consensus():
    clients = client_block(small_spec(mirror_count=3))
    assert clients["mirror_count"] == 3
    assert clients["mirrors_serving"] == 3
    assert clients["states"]["fresh"] == 40


def test_clients_never_succeed_when_no_authority_publishes():
    # A DDoS-grade bandwidth floor on every authority with full-size votes:
    # the current protocol cannot produce a consensus, so every fetch fails
    # and all clients stay stale — the user-facing side of Figure 1.
    spec = small_spec()
    attacked = spec.derive(
        relay_count=800,
        bandwidth_overrides=tuple(
            BandwidthOverride(authority_id=authority_id, base_mbps=0.05)
            for authority_id in range(5)
        ),
        max_time=700.0,
    )
    result = execute_spec(attacked)
    clients = result.client_summary
    assert not result.success
    assert clients["first_publish_time_s"] is None
    assert clients["states"]["fresh"] == 0
    assert clients["fetch_successes"] == 0
    assert clients["fresh_fraction"] == 0.0
    assert clients["time_to_fresh_p50_s"] is None
    # Everyone was stale for the entire run.
    assert clients["mean_staleness_s"] == pytest.approx(result.end_time)


def test_client_metrics_survive_the_summary_round_trip():
    from repro.protocols.base import ProtocolRunResult

    result = execute_spec(small_spec())
    restored = ProtocolRunResult.from_summary(result.summary())
    assert restored.client_summary == result.client_summary


def test_weighted_fetches_join_transfer_accounting():
    spec = small_spec()
    result = execute_spec(spec)
    baseline = execute_spec(spec.derive(client_workload=None))
    # Weighted client messages count per client, so the run with 40 clients
    # must account many more messages than its client-free twin.
    extra = result.stats.messages_sent - baseline.stats.messages_sent
    assert extra >= result.client_summary["fetch_attempts"]
