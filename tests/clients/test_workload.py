"""ClientWorkload tests: validation, splitting, hashing, serialization."""

import pytest

from repro.clients.workload import ClientWorkload
from repro.runtime.spec import RunSpec


def test_workload_is_frozen_and_hashable():
    a = ClientWorkload(population=1000)
    b = ClientWorkload(population=1000)
    assert a == b and hash(a) == hash(b)
    with pytest.raises(Exception):
        a.population = 2000


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(population=0),
        dict(population=10, cohort_count=0),
        dict(population=10, cohort_count=11),  # empty cohorts
        dict(population=10, arrival="fractal"),
        dict(population=10, fetch_interval_s=0.0),
        dict(population=10, wave_interval_s=-1.0),
        dict(population=10, retry_backoff_s=-0.1),
        dict(population=10, connection_timeout_s=0.0),
        dict(population=10, servers_per_wave=0),
        dict(population=10, mirror_count=-1),
        dict(population=10, client_downlink_mbps=0.0),
        dict(population=10, request_bytes=0),
    ],
)
def test_invalid_workloads_are_rejected(kwargs):
    with pytest.raises(Exception):
        ClientWorkload(**kwargs)


def test_cohort_populations_split_evenly_with_remainder_up_front():
    workload = ClientWorkload(population=10, cohort_count=3)
    assert workload.cohort_populations() == (4, 3, 3)
    assert sum(workload.cohort_populations()) == 10

    exact = ClientWorkload(population=9, cohort_count=3)
    assert exact.cohort_populations() == (3, 3, 3)


def test_individualized_puts_every_client_in_its_own_cohort():
    workload = ClientWorkload(population=12, cohort_count=3)
    singles = workload.individualized()
    assert singles.cohort_count == 12
    assert singles.cohort_populations() == (1,) * 12
    # Everything else is unchanged.
    assert singles.fetch_interval_s == workload.fetch_interval_s
    assert singles.arrival == workload.arrival


def test_to_dict_round_trips():
    workload = ClientWorkload(
        population=5000,
        cohort_count=8,
        arrival="deterministic",
        mirror_count=4,
        servers_per_wave=2,
        client_latency_s=0.12,
    )
    assert ClientWorkload.from_dict(workload.to_dict()) == workload


def test_key_distinguishes_every_field_that_matters():
    base = ClientWorkload(population=1000)
    variants = [
        ClientWorkload(population=2000),
        ClientWorkload(population=1000, cohort_count=16),
        ClientWorkload(population=1000, arrival="deterministic"),
        ClientWorkload(population=1000, fetch_interval_s=60.0),
        ClientWorkload(population=1000, mirror_count=8),
        ClientWorkload(population=1000, servers_per_wave=4),
        ClientWorkload(population=1000, client_downlink_mbps=10.0),
    ]
    keys = {workload.key() for workload in variants} | {base.key()}
    assert len(keys) == len(variants) + 1


def test_spec_hash_unchanged_without_a_workload_and_sensitive_with_one():
    base = RunSpec(protocol="current", relay_count=1000)
    # The pinned pre-v5 digest (see test_spec.py): attaching no workload must
    # not move it, attaching one must.
    assert base.spec_hash() == (
        "77d77617e5f628d657be029d2ce3f072d0a6dd0e6888b79b20e04d75150e732f"
    )
    with_clients = base.with_clients(ClientWorkload(population=1000))
    assert with_clients.spec_hash() != base.spec_hash()
    assert with_clients.with_clients(None).spec_hash() == base.spec_hash()
    assert (
        base.with_clients(ClientWorkload(population=2000)).spec_hash()
        != with_clients.spec_hash()
    )


def test_spec_with_workload_round_trips_through_to_dict():
    spec = RunSpec(
        protocol="ours",
        relay_count=50,
        client_workload=ClientWorkload(population=640, cohort_count=4, mirror_count=2),
    )
    data = spec.to_dict()
    assert data["format"] == 5
    assert data["client_workload"]["population"] == 640
    assert RunSpec.from_dict(data) == spec
    # Workload-free specs serialize without the key, and v4-shaped dicts
    # (no "client_workload") read back as workload-free specs.
    bare = RunSpec(protocol="ours", relay_count=50)
    bare_data = bare.to_dict()
    assert "client_workload" not in bare_data
    assert RunSpec.from_dict(bare_data) == bare
