"""Wave-driver conformance: batched cohort ticks ≡ per-cohort timers, exactly.

The batched :class:`~repro.clients.waves.CohortWaveScheduler` claims *exact*
equivalence with per-cohort wave timers (same stream pulls per cohort, same
tick instants, same ordering, same crash semantics) — not a float-tolerance
contract like the transport engines.  These tests hold it to that: full run
summaries under ``REPRO_CLIENT_WAVES=batched`` vs ``per-cohort`` must be
``==``, across arrivals, protocols, transports, and random fault plans
(which exercise the suppressed-tick → cohort-death path).

The count-based draw primitives of :mod:`repro.clients.sampling` are pinned
here too: the inverse-transform Binomial must match the CDF it claims to
walk, and the batched Gaussian expression must reproduce the scalar one
bit-for-bit.
"""

import math
import os
from contextlib import contextmanager

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.clients.sampling import (
    batch_gaussian_binomial,
    binomial_from_uniform,
    gaussian_binomial,
)
from repro.clients.waves import CLIENT_WAVES_ENV, resolve_wave_driver
from repro.clients.workload import ClientWorkload
from repro.protocols.runner import execute_spec
from repro.runtime.spec import RunSpec
from tests.faults.test_conformance import random_fault_plan


@contextmanager
def wave_driver(name):
    saved = os.environ.get(CLIENT_WAVES_ENV)
    os.environ[CLIENT_WAVES_ENV] = name
    try:
        yield
    finally:
        if saved is None:
            del os.environ[CLIENT_WAVES_ENV]
        else:
            os.environ[CLIENT_WAVES_ENV] = saved


def run_both_drivers(spec: RunSpec):
    with wave_driver("per-cohort"):
        per_cohort = execute_spec(spec).summary()
    with wave_driver("batched"):
        batched = execute_spec(spec).summary()
    return per_cohort, batched


def test_resolve_wave_driver_defaults_to_batched_and_rejects_junk():
    assert resolve_wave_driver() == "batched"
    with wave_driver("per-cohort"):
        assert resolve_wave_driver() == "per-cohort"
    with wave_driver("vectorized-harder"):
        try:
            resolve_wave_driver()
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("junk driver name must raise")


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    arrival=st.sampled_from(("poisson", "deterministic")),
    transport=st.sampled_from(("fair", "fifo", "latency-only")),
    cohorts=st.integers(min_value=1, max_value=6),
)
def test_batched_waves_reproduce_per_cohort_timers_exactly(
    seed, arrival, transport, cohorts
):
    workload = ClientWorkload(
        population=cohorts * 40,
        cohort_count=cohorts,
        arrival=arrival,
        fetch_interval_s=60.0,
        wave_interval_s=15.0,
        retry_backoff_s=30.0,
        mirror_count=seed % 3,
        servers_per_wave=1 + seed % 2,
    )
    spec = RunSpec(
        protocol="current",
        relay_count=20,
        authority_count=5,
        seed=seed % 1000,
        transport=transport,
        max_time=800.0,
        client_workload=workload,
    )
    per_cohort, batched = run_both_drivers(spec)
    assert per_cohort == batched


@settings(max_examples=4, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_batched_waves_match_under_random_fault_plans(seed):
    # Fault plans exercise the crash path: a cohort whose tick is suppressed
    # must die identically under both drivers (the driver drops it from the
    # bucket and never re-enrolls; the timer path never fires again).
    workload = ClientWorkload(
        population=160,
        cohort_count=4,
        arrival="poisson",
        fetch_interval_s=60.0,
        wave_interval_s=15.0,
        retry_backoff_s=30.0,
        mirror_count=2,
    )
    spec = RunSpec(
        protocol="current",
        relay_count=20,
        authority_count=5,
        seed=seed % 1000,
        max_time=800.0,
        client_workload=workload,
        fault_plan=random_fault_plan(seed),
    )
    per_cohort, batched = run_both_drivers(spec)
    assert per_cohort == batched


def test_batched_waves_match_with_large_gaussian_cohorts():
    # Cohorts above the exact-Binomial limit take the Gaussian path; enough
    # of them in one bucket (>= the numpy cutover) exercises the vectorized
    # batch_gaussian_binomial expression against scalar per-cohort draws.
    workload = ClientWorkload(
        population=20_000,
        cohort_count=25,
        arrival="poisson",
        fetch_interval_s=120.0,
        wave_interval_s=10.0,
        retry_backoff_s=60.0,
        mirror_count=4,
        servers_per_wave=2,
    )
    spec = RunSpec(
        protocol="current",
        relay_count=20,
        authority_count=5,
        seed=42,
        max_time=900.0,
        client_workload=workload,
    )
    per_cohort, batched = run_both_drivers(spec)
    assert per_cohort == batched


# -- sampling primitives -------------------------------------------------------

def test_binomial_from_uniform_inverts_the_binomial_cdf():
    count, probability = 12, 0.3
    q = 1.0 - probability

    def cdf(k):
        total, pmf = 0.0, q ** count
        for i in range(k + 1):
            total += pmf
            pmf *= (count - i) / (i + 1.0) * (probability / q)
        return total

    # Just below each CDF step the sample is k; at/above the step it is k+1.
    for k in range(count):
        step = cdf(k)
        assert binomial_from_uniform(count, probability, step - 1e-12) == k
        assert binomial_from_uniform(count, probability, step + 1e-12) == k + 1
    assert binomial_from_uniform(count, probability, 0.0) == 0
    assert binomial_from_uniform(count, probability, 1.0 - 1e-15) == count


def test_binomial_from_uniform_degenerate_probabilities():
    assert binomial_from_uniform(10, 0.0, 0.5) == 0
    assert binomial_from_uniform(10, 1.0, 0.5) == 10
    assert binomial_from_uniform(0, 0.5, 0.5) == 0


def test_binomial_from_uniform_mean_tracks_n_p():
    import random

    rng = random.Random(7)
    count, probability, trials = 50, 0.2, 4000
    total = sum(
        binomial_from_uniform(count, probability, rng.random()) for _ in range(trials)
    )
    mean = total / trials
    sigma = math.sqrt(count * probability * (1 - probability) / trials)
    assert abs(mean - count * probability) < 5 * sigma


def test_batch_gaussian_binomial_is_bit_identical_to_scalar():
    import random

    rng = random.Random(3)
    eligible = [rng.randrange(65, 5_000_000) for _ in range(200)]
    probability = [rng.uniform(1e-4, 0.9) for _ in range(200)]
    z = [rng.gauss(0.0, 1.0) for _ in range(200)]
    batched = batch_gaussian_binomial(eligible, probability, z)
    if batched is None:  # numpy-less install: the scalar loop IS the path
        return
    scalar = [gaussian_binomial(n, p, s) for n, p, s in zip(eligible, probability, z)]
    assert list(map(int, batched)) == scalar
