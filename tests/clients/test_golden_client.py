"""Golden client-run regression: the canonical client summary must reproduce.

One small canonical client run — the current protocol with a deterministic
40-client workload over a mirror tier — is committed under ``tests/data/``
with the byte-exact summary it produced.  Any refactor that changes the
distribution layer's results (wave scheduling, weighted-flow arithmetic,
retry accounting, metric derivation) fails here instead of silently shifting
the Figure 13 table.

To intentionally re-baseline after a *deliberate* semantic change:

    PYTHONPATH=src python tests/clients/test_golden_client.py regenerate
"""

import json
import sys
from pathlib import Path

from repro.clients.workload import ClientWorkload
from repro.protocols.runner import execute_spec
from repro.runtime.spec import RunSpec

DATA_DIR = Path(__file__).resolve().parent.parent / "data"
GOLDEN_PATH = DATA_DIR / "golden_client_run.json"


def _canonical_spec() -> RunSpec:
    return RunSpec(
        protocol="current",
        relay_count=30,
        authority_count=5,
        seed=11,
        max_time=900.0,
        client_workload=ClientWorkload(
            population=40,
            cohort_count=4,
            arrival="poisson",
            fetch_interval_s=90.0,
            wave_interval_s=20.0,
            retry_backoff_s=30.0,
            mirror_count=2,
            servers_per_wave=2,
        ),
    )


def test_execute_spec_reproduces_the_golden_client_summary_exactly():
    entry = json.loads(GOLDEN_PATH.read_text())
    spec = RunSpec.from_dict(entry["spec"])
    # The committed spec must be the canonical one (guards the data file).
    assert spec == _canonical_spec()
    assert execute_spec(spec).summary() == entry["summary"]


def regenerate() -> None:  # pragma: no cover - maintenance entry point
    spec = _canonical_spec()
    summary = execute_spec(spec).summary()
    GOLDEN_PATH.write_text(
        json.dumps({"spec": spec.to_dict(), "summary": summary}, indent=2, sort_keys=True)
        + "\n"
    )
    print("rebaselined", GOLDEN_PATH)


if __name__ == "__main__" and "regenerate" in sys.argv[1:]:  # pragma: no cover
    regenerate()
