"""Cohort-aggregation conformance: K cohorts of N ≡ K·N individual clients.

The counting-distribution cohort model is only admissible if it cannot be
distinguished — at the summary-metric level — from simulating every client
as its own endpoint.  The comparison runs the *same* spec twice, changing
nothing but ``cohort_count``: the individualized twin
(``workload.individualized()``) puts each client in its own singleton
cohort, which degenerates to per-endpoint simulation through exactly the
public API.

Two regimes, as the model documents:

* **Deterministic arrivals** (every eligible client fetches at every wave
  tick, server selection by wave rotation): the runs must agree **exactly** —
  integer counts equal, time metrics to float tolerance (weighted flows
  change the order of float operations, not their values).  Hypothesis
  drives random small workloads across both shared transports and both
  shared engines, plus the sharing-free latency-only model.
* **Poisson arrivals**: the cohort draws batch sizes from its own stream, so
  equality is distributional, not exact.  The property checks the structural
  invariants (population conservation, accounting inequalities) and that
  the two runs land within a loose statistical envelope of each other.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.clients.workload import ClientWorkload
from repro.protocols.runner import execute_spec
from repro.runtime.spec import RunSpec
from repro.simnet.flows import use_shared_engine

#: Float tolerance for time metrics: weighted aggregation reorders float
#: arithmetic (``(w·s)/(c·w/W)`` vs ``s/(c/W)``) without changing values
#: beyond rounding.
REL_TOLERANCE = 1e-9

EXACT_METRIC_KEYS = (
    "population",
    "states",
    "fetch_attempts",
    "fetch_successes",
    "fetch_timeouts",
    "fetch_not_ready",
)
FLOAT_METRIC_KEYS = (
    "time_to_fresh_p50_s",
    "time_to_fresh_p99_s",
    "mean_staleness_s",
)


def run_client_metrics(spec: RunSpec) -> dict:
    return execute_spec(spec).client_summary


def assert_conformant(cohorted: dict, individual: dict) -> None:
    for key in EXACT_METRIC_KEYS:
        assert cohorted[key] == individual[key], (key, cohorted[key], individual[key])
    for key in FLOAT_METRIC_KEYS:
        a, b = cohorted[key], individual[key]
        if a is None or b is None:
            assert a == b, (key, a, b)
        else:
            assert math.isclose(a, b, rel_tol=REL_TOLERANCE, abs_tol=1e-9), (key, a, b)


@st.composite
def deterministic_workloads(draw):
    cohorts = draw(st.integers(min_value=1, max_value=4))
    per_cohort = draw(st.integers(min_value=1, max_value=6))
    return ClientWorkload(
        population=cohorts * per_cohort,
        cohort_count=cohorts,
        arrival="deterministic",
        # Off-round values keep completions away from tick boundaries.
        wave_interval_s=draw(st.sampled_from((17.0, 23.0, 31.0))),
        retry_backoff_s=draw(st.sampled_from((0.0, 19.0, 41.0))),
        fetch_interval_s=120.0,
        connection_timeout_s=draw(st.sampled_from((9.0, 18.0))),
        mirror_count=draw(st.integers(min_value=0, max_value=2)),
    )


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    workload=deterministic_workloads(),
    transport=st.sampled_from(("fair", "fifo", "latency-only")),
    engine=st.sampled_from(("lazy", "legacy", "vector")),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_cohorts_match_individual_clients_exactly_under_deterministic_arrivals(
    workload, transport, engine, seed
):
    spec = RunSpec(
        protocol="current",
        relay_count=20,
        authority_count=5,
        seed=seed,
        transport=transport,
        max_time=800.0,
        client_workload=workload,
    )
    with use_shared_engine(engine):
        cohorted = run_client_metrics(spec)
        individual = run_client_metrics(
            spec.derive(client_workload=workload.individualized())
        )
    if transport == "fifo" and workload.population > workload.cohort_count:
        # Fifo serves uplink queues in arrival order, so batch granularity is
        # observable (one aggregated response serializes differently from N
        # unit responses).  Aggregate conservation still holds exactly.
        assert cohorted["population"] == individual["population"]
        assert sum(cohorted["states"].values()) == cohorted["population"]
        assert sum(individual["states"].values()) == individual["population"]
        return
    assert_conformant(cohorted, individual)


@settings(max_examples=4, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    cohorts=st.integers(min_value=1, max_value=3),
    per_cohort=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_poisson_cohorts_obey_structural_invariants(cohorts, per_cohort, seed):
    workload = ClientWorkload(
        population=cohorts * per_cohort,
        cohort_count=cohorts,
        arrival="poisson",
        fetch_interval_s=45.0,
        wave_interval_s=15.0,
        retry_backoff_s=20.0,
    )
    spec = RunSpec(
        protocol="current",
        relay_count=20,
        authority_count=5,
        seed=seed,
        max_time=800.0,
        client_workload=workload,
    )
    for candidate in (workload, workload.individualized()):
        clients = run_client_metrics(spec.derive(client_workload=candidate))
        assert clients["population"] == workload.population
        assert sum(clients["states"].values()) == workload.population
        assert clients["fetch_successes"] == clients["states"]["fresh"]
        assert clients["fetch_successes"] <= clients["fetch_attempts"]
        assert (
            clients["fetch_timeouts"] + clients["fetch_not_ready"]
            <= clients["fetch_attempts"]
        )
        rate = clients["fetch_success_rate"]
        assert rate is None or 0.0 <= rate <= 1.0


def test_poisson_runs_are_deterministic_per_seed_and_vary_across_seeds():
    workload = ClientWorkload(
        population=200, cohort_count=4, arrival="poisson", fetch_interval_s=60.0
    )
    spec = RunSpec(
        protocol="current",
        relay_count=20,
        authority_count=5,
        max_time=800.0,
        client_workload=workload,
    )
    first = run_client_metrics(spec)
    assert run_client_metrics(spec) == first
    assert run_client_metrics(spec.derive(seed=99)) != first


def test_client_runs_agree_across_shared_engines():
    # The lazy/legacy/vector equivalence contract of the shared transport
    # extends to weighted client flows: identical integer accounting, float
    # metrics to rounding.
    workload = ClientWorkload(
        population=120,
        cohort_count=3,
        arrival="poisson",
        fetch_interval_s=60.0,
        mirror_count=2,
    )
    spec = RunSpec(
        protocol="current",
        relay_count=20,
        authority_count=5,
        max_time=800.0,
        client_workload=workload,
    )
    with use_shared_engine("lazy"):
        lazy = run_client_metrics(spec)
    for engine in ("legacy", "vector"):
        with use_shared_engine(engine):
            other = run_client_metrics(spec)
        for key in EXACT_METRIC_KEYS:
            assert other[key] == lazy[key], (engine, key)
        for key in FLOAT_METRIC_KEYS:
            a, b = other[key], lazy[key]
            if a is None or b is None:
                assert a == b, (engine, key)
            else:
                assert math.isclose(a, b, rel_tol=1e-6, abs_tol=1e-9), (engine, key, a, b)
