"""Figure 7 analysis tests."""

import pytest

from repro.analysis.bandwidth import (
    analytic_required_bandwidth_mbps,
    required_bandwidth_mbps,
)


def test_analytic_model_is_linear_and_near_10mbps_at_8000_relays():
    at_8000 = analytic_required_bandwidth_mbps(8000)
    assert 8.0 <= at_8000 <= 13.0, "paper reports roughly 10 Mbit/s at 8,000 relays"
    at_4000 = analytic_required_bandwidth_mbps(4000)
    assert at_8000 / at_4000 == pytest.approx(2.0, rel=0.1)
    assert analytic_required_bandwidth_mbps(0) > 0  # header still needs moving


def test_analytic_model_rejects_negative():
    with pytest.raises(Exception):
        analytic_required_bandwidth_mbps(-1)


def test_simulated_requirement_matches_analytic_model():
    result = required_bandwidth_mbps(6000, tolerance_mbps=1.0)
    analytic = analytic_required_bandwidth_mbps(6000)
    assert result.required_mbps == pytest.approx(analytic, rel=0.35)
    assert result.iterations > 0


def test_simulated_requirement_increases_with_relays():
    small = required_bandwidth_mbps(2000, tolerance_mbps=1.0)
    large = required_bandwidth_mbps(8000, tolerance_mbps=1.0)
    assert large.required_mbps > small.required_mbps
    # Both far exceed the 0.5 Mbit/s left under DDoS: the attack always works.
    assert small.required_mbps > 1.0
