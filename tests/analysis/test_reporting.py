"""Text rendering tests."""

from repro.analysis.reporting import format_series, format_table


def test_format_table_alignment_and_title():
    text = format_table(
        ["Relays", "Latency"],
        [(1000, 3.25), (10000, None)],
        title="Demo table",
    )
    lines = text.splitlines()
    assert lines[0] == "Demo table"
    assert lines[1].startswith("Relays")
    assert set(lines[2]) <= {"-", " "}
    assert "3.250" in text
    assert "-" in lines[-1]  # None rendered as a dash


def test_format_table_without_title():
    text = format_table(["a"], [["x"]])
    assert text.splitlines()[0] == "a"


def test_format_series():
    text = format_series("x", "y", [(1, 2.0), (3, 4.0)], title="Series")
    assert "Series" in text
    assert "4.000" in text
