"""Table 1 / Table 2 analysis tests."""

import pytest

from repro.analysis.complexity import (
    communication_complexity_bytes,
    complexity_comparison_table,
    round_complexity_table,
)


def test_complexity_ordering_matches_table1():
    n, d = 9, 3_000_000
    current = communication_complexity_bytes("current", n, d)
    synchronous = communication_complexity_bytes("synchronous", n, d)
    ours = communication_complexity_bytes("ours", n, d)
    # The synchronous protocol moves roughly n× more document bytes.
    assert synchronous > 5 * current
    # Ours only adds signature traffic on top of the current protocol's documents.
    assert current <= ours < synchronous
    assert (ours - current) < 0.1 * current


def test_unknown_protocol_rejected():
    with pytest.raises(ValueError):
        communication_complexity_bytes("unknown", 9, 1000)
    with pytest.raises(Exception):
        communication_complexity_bytes("current", 0, 1000)


def test_comparison_table_rows_and_measured_column():
    rows = complexity_comparison_table(measured={"current": 1.0, "ours": 2.0})
    assert [row.protocol for row in rows] == [
        "Current",
        "Synchronous (Luo et al.)",
        "Ours (Partial Synchrony)",
    ]
    assert rows[0].network_model == "Bounded Synchrony"
    assert rows[2].network_model == "Partial Synchrony"
    assert rows[0].measured_bytes == 1.0
    assert rows[1].measured_bytes is None


def test_round_complexity_table_totals_nine_for_hotstuff():
    rows = round_complexity_table("hotstuff")
    by_name = {row.sub_protocol: row.rounds for row in rows}
    assert by_name["Dissemination"] == "2"
    assert by_name["Aggregation"] == "2"
    assert by_name["Agreement (hotstuff)"] == "5"
    assert by_name["Total"] == "9"


def test_round_complexity_other_engines():
    assert {row.sub_protocol: row.rounds for row in round_complexity_table("pbft")}["Total"] == "7"
    with pytest.raises(KeyError):
        round_complexity_table("raft")
