"""Latency sweep (Figure 10 machinery) tests."""

import pytest

from repro.analysis.latency import LatencyCell, LatencyGrid, sweep_latency


def test_grid_accessors():
    grid = LatencyGrid()
    grid.add(LatencyCell("current", 10.0, 1000, True, 3.0))
    grid.add(LatencyCell("current", 10.0, 8000, False, None))
    grid.add(LatencyCell("ours", 10.0, 8000, True, 20.0))
    assert grid.protocols() == ["current", "ours"]
    assert grid.bandwidths() == [10.0]
    series = grid.series("current", 10.0)
    assert [cell.relay_count for cell in series] == [1000, 8000]
    assert grid.failure_threshold("current", 10.0) == 8000
    assert grid.failure_threshold("ours", 10.0) is None


def test_small_sweep_reproduces_figure10_ordering():
    grid = sweep_latency(
        protocols=("current", "synchronous", "ours"),
        bandwidths_mbps=(10.0,),
        relay_counts=(1000, 8000),
        max_time=1500.0,
    )
    # At 10 Mbit/s with 1,000 relays everyone succeeds and the synchronous
    # protocol is the slowest of the three.
    small = {cell.protocol: cell for cell in grid.cells if cell.relay_count == 1000}
    assert all(cell.success for cell in small.values())
    assert small["synchronous"].latency_s > small["current"].latency_s
    # At 8,000 relays only ours still succeeds (current/synchronous time out).
    large = {cell.protocol: cell for cell in grid.cells if cell.relay_count == 8000}
    assert large["ours"].success
    assert not large["current"].success
    assert not large["synchronous"].success


def test_sweep_requires_protocols():
    with pytest.raises(Exception):
        sweep_latency(protocols=(), bandwidths_mbps=(10.0,), relay_counts=(1000,))
