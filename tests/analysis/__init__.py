"""Test package."""
