"""Digest tests."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.digest import DIGEST_SIZE_BYTES, digest_hex, sha256_digest


def test_digest_size():
    assert len(sha256_digest(b"hello")) == DIGEST_SIZE_BYTES


def test_str_and_bytes_inputs_agree():
    assert sha256_digest("hello") == sha256_digest(b"hello")
    assert digest_hex("hello") == digest_hex(b"hello")


def test_hex_is_uppercase_and_matches_raw():
    hexed = digest_hex("abc")
    assert hexed == hexed.upper()
    assert bytes.fromhex(hexed) == sha256_digest("abc")


def test_rejects_non_string_input():
    with pytest.raises(TypeError):
        sha256_digest(12345)  # type: ignore[arg-type]


@given(st.binary(max_size=256), st.binary(max_size=256))
def test_distinct_inputs_distinct_digests(a, b):
    if a != b:
        assert sha256_digest(a) != sha256_digest(b)
    else:
        assert sha256_digest(a) == sha256_digest(b)
