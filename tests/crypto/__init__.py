"""Test package."""
