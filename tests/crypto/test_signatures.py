"""Signature and signature-chain tests."""

import dataclasses

import pytest

from repro.crypto.digest import sha256_digest
from repro.crypto.keys import KeyPair, KeyRing
from repro.crypto.signatures import SIGNATURE_SIZE_BYTES, Signature, SignatureChain, sign, verify


@pytest.fixture()
def ring_and_pairs():
    pairs = {name: KeyPair.generate(name, b"seed") for name in ("a", "b", "c", "d")}
    return KeyRing(pairs.values()), pairs


def test_sign_verify_round_trip(ring_and_pairs):
    ring, pairs = ring_and_pairs
    signature = sign(pairs["a"], "ctx", b"message")
    assert verify(ring, signature)


def test_sign_none_message(ring_and_pairs):
    ring, pairs = ring_and_pairs
    signature = sign(pairs["a"], "ctx", None)
    assert signature.message is None
    assert verify(ring, signature)


def test_tampered_message_fails(ring_and_pairs):
    ring, pairs = ring_and_pairs
    signature = sign(pairs["a"], "ctx", b"message")
    forged = dataclasses.replace(signature, message=b"other")
    assert not verify(ring, forged)


def test_wrong_context_fails(ring_and_pairs):
    ring, pairs = ring_and_pairs
    signature = sign(pairs["a"], "ctx", b"message")
    forged = dataclasses.replace(signature, context="other-ctx")
    assert not verify(ring, forged)


def test_unknown_signer_fails(ring_and_pairs):
    ring, pairs = ring_and_pairs
    outsider = KeyPair.generate("mallory", b"seed")
    signature = sign(outsider, "ctx", b"message")
    assert not verify(ring, signature)


def test_impersonation_fails(ring_and_pairs):
    ring, pairs = ring_and_pairs
    signature = sign(pairs["a"], "ctx", b"message")
    forged = dataclasses.replace(signature, signer="b")
    assert not verify(ring, forged)


def test_signature_size_is_modelled(ring_and_pairs):
    _ring, pairs = ring_and_pairs
    assert sign(pairs["a"], "ctx", b"m").size_bytes == SIGNATURE_SIZE_BYTES


def test_chain_build_and_validate(ring_and_pairs):
    ring, pairs = ring_and_pairs
    digest = sha256_digest(b"value")
    chain = SignatureChain.initial(pairs["a"], "ds", digest)
    chain = chain.extend(pairs["b"], "ds").extend(pairs["c"], "ds")
    assert chain.length == 3
    assert chain.signers() == ("a", "b", "c")
    assert chain.is_valid(ring, "ds", designated_sender="a", minimum_length=3)
    assert not chain.is_valid(ring, "ds", designated_sender="b", minimum_length=1)
    assert not chain.is_valid(ring, "ds", designated_sender="a", minimum_length=4)


def test_chain_rejects_duplicate_signers(ring_and_pairs):
    ring, pairs = ring_and_pairs
    digest = sha256_digest(b"value")
    chain = SignatureChain.initial(pairs["a"], "ds", digest).extend(pairs["a"], "ds")
    assert not chain.is_valid(ring, "ds", designated_sender="a", minimum_length=2)


def test_chain_rejects_wrong_value(ring_and_pairs):
    ring, pairs = ring_and_pairs
    chain = SignatureChain.initial(pairs["a"], "ds", sha256_digest(b"value"))
    tampered = SignatureChain(sha256_digest(b"other"), chain.signatures)
    assert not tampered.is_valid(ring, "ds", designated_sender="a", minimum_length=1)


def test_chain_size_accounts_for_signatures(ring_and_pairs):
    _ring, pairs = ring_and_pairs
    digest = sha256_digest(b"value")
    one = SignatureChain.initial(pairs["a"], "ds", digest)
    two = one.extend(pairs["b"], "ds")
    assert two.size_bytes == one.size_bytes + SIGNATURE_SIZE_BYTES
