"""Signature and signature-chain tests."""

import dataclasses

import pytest

from repro.crypto.digest import sha256_digest
from repro.crypto.keys import KeyPair, KeyRing
from repro.crypto.signatures import SIGNATURE_SIZE_BYTES, Signature, SignatureChain, sign, verify


@pytest.fixture()
def ring_and_pairs():
    pairs = {name: KeyPair.generate(name, b"seed") for name in ("a", "b", "c", "d")}
    return KeyRing(pairs.values()), pairs


def test_sign_verify_round_trip(ring_and_pairs):
    ring, pairs = ring_and_pairs
    signature = sign(pairs["a"], "ctx", b"message")
    assert verify(ring, signature)


def test_sign_none_message(ring_and_pairs):
    ring, pairs = ring_and_pairs
    signature = sign(pairs["a"], "ctx", None)
    assert signature.message is None
    assert verify(ring, signature)


def test_tampered_message_fails(ring_and_pairs):
    ring, pairs = ring_and_pairs
    signature = sign(pairs["a"], "ctx", b"message")
    forged = dataclasses.replace(signature, message=b"other")
    assert not verify(ring, forged)


def test_wrong_context_fails(ring_and_pairs):
    ring, pairs = ring_and_pairs
    signature = sign(pairs["a"], "ctx", b"message")
    forged = dataclasses.replace(signature, context="other-ctx")
    assert not verify(ring, forged)


def test_unknown_signer_fails(ring_and_pairs):
    ring, pairs = ring_and_pairs
    outsider = KeyPair.generate("mallory", b"seed")
    signature = sign(outsider, "ctx", b"message")
    assert not verify(ring, signature)


def test_impersonation_fails(ring_and_pairs):
    ring, pairs = ring_and_pairs
    signature = sign(pairs["a"], "ctx", b"message")
    forged = dataclasses.replace(signature, signer="b")
    assert not verify(ring, forged)


def test_signature_size_is_modelled(ring_and_pairs):
    _ring, pairs = ring_and_pairs
    assert sign(pairs["a"], "ctx", b"m").size_bytes == SIGNATURE_SIZE_BYTES


def test_chain_build_and_validate(ring_and_pairs):
    ring, pairs = ring_and_pairs
    digest = sha256_digest(b"value")
    chain = SignatureChain.initial(pairs["a"], "ds", digest)
    chain = chain.extend(pairs["b"], "ds").extend(pairs["c"], "ds")
    assert chain.length == 3
    assert chain.signers() == ("a", "b", "c")
    assert chain.is_valid(ring, "ds", designated_sender="a", minimum_length=3)
    assert not chain.is_valid(ring, "ds", designated_sender="b", minimum_length=1)
    assert not chain.is_valid(ring, "ds", designated_sender="a", minimum_length=4)


def test_chain_rejects_duplicate_signers(ring_and_pairs):
    ring, pairs = ring_and_pairs
    digest = sha256_digest(b"value")
    chain = SignatureChain.initial(pairs["a"], "ds", digest).extend(pairs["a"], "ds")
    assert not chain.is_valid(ring, "ds", designated_sender="a", minimum_length=2)


def test_chain_rejects_wrong_value(ring_and_pairs):
    ring, pairs = ring_and_pairs
    chain = SignatureChain.initial(pairs["a"], "ds", sha256_digest(b"value"))
    tampered = SignatureChain(sha256_digest(b"other"), chain.signatures)
    assert not tampered.is_valid(ring, "ds", designated_sender="a", minimum_length=1)


def test_chain_size_accounts_for_signatures(ring_and_pairs):
    _ring, pairs = ring_and_pairs
    digest = sha256_digest(b"value")
    one = SignatureChain.initial(pairs["a"], "ds", digest)
    two = one.extend(pairs["b"], "ds")
    assert two.size_bytes == one.size_bytes + SIGNATURE_SIZE_BYTES


# -- verify-memo keying -------------------------------------------------------


def test_verify_memo_keyed_per_keypair_same_payload_bytes():
    """The per-signature verdict memo must key on the verifying pair.

    Two rings can hold *different* keys for the same owner (a rotation, a
    Byzantine ring).  The signature's canonical payload bytes are identical
    in both verifications, so a memo keyed on payload — or a bare cached
    boolean — would leak the first ring's verdict into the second.
    """
    pair_v1 = KeyPair.generate("auth", b"seed-one")
    pair_v2 = KeyPair.generate("auth", b"seed-two")
    ring_v1 = KeyRing([pair_v1])
    ring_v2 = KeyRing([pair_v2])

    signature = sign(pair_v1, "ctx", b"message")
    assert verify(ring_v1, signature)
    # Same signer name, same payload bytes, different key: must recompute
    # and fail, not replay the cached True.
    assert not verify(ring_v2, signature)
    # And the first verdict must survive the second, keyed separately.
    assert verify(ring_v1, signature)
    memo = signature.__dict__["_verify_memo"]
    assert memo == {pair_v1: True, pair_v2: False}


def test_verify_memo_caches_single_pair_verdict(ring_and_pairs):
    ring, pairs = ring_and_pairs
    signature = sign(pairs["a"], "ctx", b"message")
    assert verify(ring, signature)
    assert verify(ring, signature)
    memo = signature.__dict__["_verify_memo"]
    assert list(memo.values()) == [True]


def test_identical_payload_bytes_distinct_signers_verify_independently(ring_and_pairs):
    ring, pairs = ring_and_pairs
    sig_a = sign(pairs["a"], "ctx", b"same-bytes")
    sig_b = sign(pairs["b"], "ctx", b"same-bytes")
    assert sig_a.canonical_payload() == sig_b.canonical_payload()
    assert sig_a.tag != sig_b.tag
    assert verify(ring, sig_a)
    assert verify(ring, sig_b)
