"""Key pair and key ring tests."""

import pytest

from repro.crypto.keys import KeyPair, KeyRing
from repro.utils.validation import ValidationError


def test_generation_is_deterministic():
    a = KeyPair.generate("auth-0", b"seed")
    b = KeyPair.generate("auth-0", b"seed")
    assert a == b


def test_different_owner_or_seed_changes_keys():
    base = KeyPair.generate("auth-0", b"seed")
    assert KeyPair.generate("auth-1", b"seed").secret != base.secret
    assert KeyPair.generate("auth-0", b"other").secret != base.secret


def test_empty_owner_rejected():
    with pytest.raises(ValidationError):
        KeyPair.generate("", b"seed")


def test_mac_depends_on_message_and_key():
    pair = KeyPair.generate("auth-0", b"seed")
    other = KeyPair.generate("auth-1", b"seed")
    assert pair.mac(b"m1") != pair.mac(b"m2")
    assert pair.mac(b"m1") != other.mac(b"m1")


def test_keyring_lookup_and_membership():
    pair = KeyPair.generate("auth-0", b"seed")
    ring = KeyRing([pair])
    assert "auth-0" in ring
    assert "auth-1" not in ring
    assert ring.get("auth-0") is pair
    assert len(ring) == 1
    with pytest.raises(KeyError):
        ring.get("auth-1")


def test_keyring_rejects_duplicate_owner():
    pair = KeyPair.generate("auth-0", b"seed")
    ring = KeyRing([pair])
    with pytest.raises(ValidationError):
        ring.add(KeyPair.generate("auth-0", b"other-seed"))


def test_for_owners_builds_full_ring():
    ring = KeyRing.for_owners(["a", "b", "c"])
    assert set(ring.owners()) == {"a", "b", "c"}
