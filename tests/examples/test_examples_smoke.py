"""CI smoke tests for the README quickstart examples.

Each example under ``examples/`` runs as a real subprocess (the way a reader
would run it) with ``REPRO_EXAMPLE_QUICK=1``, which caps run sizes via the
examples' own quick mode — same code paths, minutes shrunk to seconds — so
the quickstart cannot silently rot.  Scripts run from a temporary working
directory: the on-disk sweep caches some examples create must not land in
the repository.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: Generous per-example budget; quick mode runs in a few seconds each.
TIMEOUT_S = 300


def test_every_example_is_covered():
    # A new example joins this smoke suite automatically via the glob; this
    # guards against the directory being empty or moved.
    assert [path.name for path in EXAMPLES] == [
        "bandwidth_planning.py",
        "ddos_attack_demo.py",
        "icps_basics.py",
        "protocol_comparison.py",
        "quickstart.py",
    ]


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.stem)
def test_example_runs_clean_in_quick_mode(script, tmp_path):
    env = dict(os.environ)
    env["REPRO_EXAMPLE_QUICK"] = "1"
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, str(script)],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=TIMEOUT_S,
    )
    assert completed.returncode == 0, (
        "%s failed\n--- stdout ---\n%s\n--- stderr ---\n%s"
        % (script.name, completed.stdout[-4000:], completed.stderr[-4000:])
    )
    assert completed.stdout.strip(), "%s printed nothing" % script.name
