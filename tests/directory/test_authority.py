"""Directory authority identity tests."""

import pytest

from repro.crypto.signatures import sign, verify
from repro.directory.authority import TOR_AUTHORITY_NICKNAMES, make_authorities
from repro.utils.validation import ValidationError


def test_live_network_configuration():
    authorities, ring = make_authorities(9)
    assert len(authorities) == 9
    assert len(ring) == 9
    assert [auth.nickname for auth in authorities] == list(TOR_AUTHORITY_NICKNAMES)


def test_authority_ids_and_names_are_sequential():
    authorities, _ring = make_authorities(5)
    assert [auth.authority_id for auth in authorities] == list(range(5))
    assert [auth.name for auth in authorities] == ["auth-%d" % i for i in range(5)]


def test_fingerprints_are_unique_40_hex():
    authorities, _ring = make_authorities(9)
    fingerprints = {auth.fingerprint for auth in authorities}
    assert len(fingerprints) == 9
    assert all(len(fp) == 40 for fp in fingerprints)


def test_generation_is_deterministic_in_seed():
    first, _ = make_authorities(9, seed=11)
    second, _ = make_authorities(9, seed=11)
    third, _ = make_authorities(9, seed=12)
    assert [a.fingerprint for a in first] == [a.fingerprint for a in second]
    assert [a.fingerprint for a in first] != [a.fingerprint for a in third]


def test_keys_registered_in_ring_and_usable():
    authorities, ring = make_authorities(3)
    signature = sign(authorities[0].keypair, "test", b"payload")
    assert verify(ring, signature)


def test_bandwidth_authority_count():
    authorities, _ring = make_authorities(9, bandwidth_authority_count=5)
    assert sum(1 for auth in authorities if auth.is_bandwidth_authority) == 5
    with pytest.raises(ValidationError):
        make_authorities(9, bandwidth_authority_count=10)


def test_addresses_match_figure1_style():
    authorities, _ring = make_authorities(9)
    assert authorities[0].address == "100.0.0.1:8080"
    assert authorities[8].address == "100.0.0.9:8080"


def test_more_than_nine_authorities_get_generic_nicknames():
    authorities, _ring = make_authorities(11)
    assert authorities[10].nickname == "auth10"
