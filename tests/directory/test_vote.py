"""Vote document tests."""

import pytest

from repro.directory.relay import Relay
from repro.directory.vote import VOTE_HEADER_BYTES, VoteDocument, estimate_vote_size_bytes


def make_relays(count):
    return [
        Relay(fingerprint=("%040X" % index), nickname="relay%d" % index)
        for index in range(count)
    ]


def make_vote(count=5, **kwargs):
    return VoteDocument.from_relays(
        authority_id=3, authority_fingerprint="F" * 40, relays=make_relays(count), **kwargs
    )


def test_relay_count_and_fingerprints_sorted():
    vote = make_vote(5)
    assert vote.relay_count == 5
    assert list(vote.fingerprints()) == sorted(vote.fingerprints())


def test_get_relay():
    vote = make_vote(3)
    fingerprint = vote.fingerprints()[0]
    assert vote.get(fingerprint).fingerprint == fingerprint
    assert vote.get("0" * 40) is None or vote.get("0" * 40).fingerprint == "0" * 40


def test_header_contains_vote_status_and_source():
    header = make_vote(1).header()
    assert "vote-status vote" in header
    assert "dir-source auth-3" in header


def test_size_grows_linearly_with_relays():
    small = make_vote(10).size_bytes
    large = make_vote(100).size_bytes
    per_relay = (large - small) / 90
    assert 250 <= per_relay <= 600


def test_size_includes_header_padding():
    assert make_vote(1).size_bytes >= VOTE_HEADER_BYTES


def test_digest_changes_with_content():
    assert make_vote(5).digest() != make_vote(6).digest()
    assert make_vote(5).digest_hex() == make_vote(5).digest_hex()


def test_padded_relay_count_extrapolates_size():
    plain = make_vote(50)
    padded = make_vote(50, padded_relay_count=5000)
    assert padded.digest() == plain.digest(), "padding must not change content identity"
    ratio = padded.size_bytes / plain.size_bytes
    assert ratio > 50  # roughly 100x more relays worth of entries

    # Padding below the materialised count is a no-op.
    unpadded = make_vote(50, padded_relay_count=10)
    assert unpadded.size_bytes == plain.size_bytes


def test_voting_interval_must_be_positive():
    with pytest.raises(Exception):
        VoteDocument(
            authority_id=0,
            authority_fingerprint="F" * 40,
            valid_after=0.0,
            relays={},
            voting_interval=0,
        )


def test_estimate_vote_size_linear():
    assert estimate_vote_size_bytes(0) == VOTE_HEADER_BYTES
    assert estimate_vote_size_bytes(1000) == VOTE_HEADER_BYTES + 390_000
    with pytest.raises(Exception):
        estimate_vote_size_bytes(-1)
