"""Relay descriptor tests."""

import pytest

from repro.directory.relay import RELAY_FLAGS, ExitPolicySummary, Relay, RelayFlag
from repro.utils.validation import ValidationError


def make_relay(**overrides):
    defaults = dict(fingerprint="A" * 40, nickname="relay0")
    defaults.update(overrides)
    return Relay(**defaults)


def test_fingerprint_must_be_40_chars():
    with pytest.raises(ValidationError):
        make_relay(fingerprint="ABC")


def test_nickname_must_not_be_empty():
    with pytest.raises(ValidationError):
        make_relay(nickname="")


def test_negative_bandwidth_rejected():
    with pytest.raises(ValidationError):
        make_relay(bandwidth=-1)


def test_flag_constants_are_sorted_and_complete():
    assert list(RELAY_FLAGS) == sorted(RELAY_FLAGS)
    assert RelayFlag.RUNNING in RELAY_FLAGS
    assert RelayFlag.EXIT in RELAY_FLAGS


def test_serialization_contains_expected_lines():
    relay = make_relay(flags=frozenset({RelayFlag.RUNNING, RelayFlag.FAST}))
    text = relay.serialize()
    assert text.startswith("r relay0 " + "A" * 40)
    assert "\ns Fast Running\n" in text
    assert "\nv Tor " in text
    assert "\nw Bandwidth=" in text
    assert text.endswith("\n")


def test_serialized_flags_are_sorted():
    relay = make_relay(flags=frozenset({RelayFlag.VALID, RelayFlag.EXIT, RelayFlag.GUARD}))
    s_line = [line for line in relay.serialize().splitlines() if line.startswith("s ")][0]
    flags = s_line[2:].split()
    assert flags == sorted(flags)


def test_entry_size_realistic():
    # Vote entries on the live network are a few hundred bytes; the bandwidth
    # calibration in DESIGN-calibration.md assumes roughly 300-450 bytes per
    # relay.
    size = make_relay().entry_size_bytes
    assert 250 <= size <= 600


def test_measured_flag_changes_w_line():
    relay = make_relay(bandwidth=500, measured=True)
    assert "Measured=500" in relay.serialize()
    relay = make_relay(bandwidth=500, measured=False)
    assert "Measured" not in relay.serialize()


def test_with_flags_and_with_bandwidth_return_copies():
    relay = make_relay()
    flagged = relay.with_flags(frozenset({RelayFlag.EXIT}))
    measured = relay.with_bandwidth(999, measured=True)
    assert flagged is not relay and flagged.flags == frozenset({RelayFlag.EXIT})
    assert measured.bandwidth == 999 and measured.measured
    assert relay.flags == frozenset() and relay.bandwidth == 1000


def test_exit_policy_serialization_and_ordering():
    accept = ExitPolicySummary(accept=True, ports="80,443")
    reject = ExitPolicySummary(accept=False, ports="1-65535")
    assert accept.serialize() == "p accept 80,443"
    assert reject.serialize() == "p reject 1-65535"
    # "reject" > "accept" lexicographically, matching the tie-break rule.
    assert max([accept, reject], key=lambda p: p.sort_key()) is reject
