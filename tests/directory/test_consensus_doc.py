"""Consensus document tests."""

import pytest

from repro.crypto.keys import KeyPair, KeyRing
from repro.directory.consensus_doc import ConsensusDocument
from repro.directory.relay import Relay


@pytest.fixture()
def ring_and_pairs():
    pairs = {i: KeyPair.generate("auth-%d" % i, b"seed") for i in range(9)}
    return KeyRing(pairs.values()), pairs


def make_consensus(valid_after=0.0):
    relays = {
        "%040X" % index: Relay(fingerprint="%040X" % index, nickname="relay%d" % index)
        for index in range(5)
    }
    return ConsensusDocument(valid_after=valid_after, relays=relays)


def test_lifetime_rules():
    consensus = make_consensus(valid_after=1000.0)
    assert consensus.fresh_until == 1000.0 + 3600.0
    assert consensus.valid_until == 1000.0 + 3 * 3600.0
    assert consensus.is_usable_at(1000.0)
    assert consensus.is_usable_at(1000.0 + 3 * 3600.0)
    assert not consensus.is_usable_at(1000.0 + 3 * 3600.0 + 1)
    assert not consensus.is_usable_at(999.0)


def test_digest_stable_and_content_sensitive():
    a = make_consensus()
    b = make_consensus()
    assert a.digest() == b.digest()
    b.relays.popitem()
    assert a.digest() != b.digest()


def test_sign_and_validate_with_majority(ring_and_pairs):
    ring, pairs = ring_and_pairs
    consensus = make_consensus()
    for index in range(5):
        consensus.sign_with(index, "FP%d" % index, pairs[index])
    assert len(consensus.valid_signatures(ring)) == 5
    assert consensus.is_valid(ring, total_authorities=9)


def test_four_signatures_are_not_enough(ring_and_pairs):
    ring, pairs = ring_and_pairs
    consensus = make_consensus()
    for index in range(4):
        consensus.sign_with(index, "FP%d" % index, pairs[index])
    assert not consensus.is_valid(ring, total_authorities=9)


def test_signature_over_different_body_does_not_count(ring_and_pairs):
    ring, pairs = ring_and_pairs
    consensus = make_consensus()
    other = make_consensus()
    other.relays.popitem()
    record = other.sign_with(0, "FP0", pairs[0])
    consensus.add_signature(record)
    assert consensus.valid_signatures(ring) == []


def test_duplicate_signatures_ignored(ring_and_pairs):
    ring, pairs = ring_and_pairs
    consensus = make_consensus()
    consensus.sign_with(0, "FP0", pairs[0])
    consensus.sign_with(0, "FP0", pairs[0])
    assert len(consensus.signatures) == 1


def test_size_includes_signatures(ring_and_pairs):
    _ring, pairs = ring_and_pairs
    consensus = make_consensus()
    before = consensus.size_bytes
    consensus.sign_with(0, "FP0", pairs[0])
    assert consensus.size_bytes > before


def test_is_valid_rejects_bad_total(ring_and_pairs):
    ring, _pairs = ring_and_pairs
    with pytest.raises(Exception):
        make_consensus().is_valid(ring, total_authorities=0)


# -- serialization memo lifecycle --------------------------------------------


def test_body_bytes_cached_until_relay_count_changes():
    consensus = make_consensus()
    first = consensus.body_bytes()
    # Hot path: repeated serving must hand back the same bytes object.
    assert consensus.body_bytes() is first
    assert first == consensus.serialize_body().encode("utf-8")
    consensus.relays.popitem()
    rebuilt = consensus.body_bytes()
    assert rebuilt is not first
    assert rebuilt == consensus.serialize_body().encode("utf-8")
    assert len(rebuilt) < len(first)


def test_serialization_memo_not_shared_across_reconstruction():
    """A document rebuilt from the same inputs starts with cold memos.

    Aggregation reconstructs per-authority documents from the shared relay
    map (see ``aggregate_votes``); each instance must memoize its own body,
    digest and size — never inherit another document's cached state — so a
    reconstruction whose relay mapping then diverges serialises its *own*
    contents.
    """
    original = make_consensus()
    original_body = original.body_bytes()
    rebuilt = ConsensusDocument(valid_after=0.0, relays=dict(original.relays))
    assert "_body_bytes" not in rebuilt.__dict__
    assert rebuilt.body_bytes() == original_body
    assert rebuilt.digest() == original.digest()
    # Diverge the reconstruction: its memo, not the original's, invalidates.
    rebuilt.relays.popitem()
    assert rebuilt.body_bytes() != original_body
    assert original.body_bytes() is original_body


def test_size_bytes_tracks_both_memo_keys(ring_and_pairs):
    _ring, pairs = ring_and_pairs
    consensus = make_consensus()
    base = consensus.size_bytes
    consensus.sign_with(0, "FP0", pairs[0])
    signed = consensus.size_bytes
    assert signed > base
    consensus.relays.popitem()
    assert consensus.size_bytes < signed
