"""Tests of the Figure-2 aggregation algorithm, including property-based ones."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.directory.aggregate import (
    AggregationConfig,
    aggregate_relay,
    aggregate_votes,
    version_sort_key,
)
from repro.directory.relay import ExitPolicySummary, Relay, RelayFlag
from repro.directory.vote import VoteDocument
from repro.utils.validation import ValidationError

FP = "C" * 40


def make_vote(authority_id, relays):
    return VoteDocument.from_relays(
        authority_id=authority_id,
        authority_fingerprint="%040d" % authority_id,
        relays=relays,
    )


class TestInclusionThreshold:
    def test_at_least_half_rule(self):
        config = AggregationConfig(inclusion_rule="at-least-half")
        assert config.inclusion_threshold(9) == 4
        assert config.inclusion_threshold(5) == 2
        assert config.inclusion_threshold(1) == 1

    def test_strict_majority_rule(self):
        config = AggregationConfig(inclusion_rule="strict-majority")
        assert config.inclusion_threshold(9) == 5
        assert config.inclusion_threshold(8) == 5

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValidationError):
            AggregationConfig(inclusion_rule="whatever")


class TestRelayInclusion:
    def test_relay_below_threshold_excluded(self):
        votes = [make_vote(0, [Relay(fingerprint=FP, nickname="r")])]
        votes += [make_vote(i, []) for i in range(1, 9)]
        consensus = aggregate_votes(votes)
        assert consensus.relay_count == 0

    def test_relay_meeting_threshold_included(self):
        votes = [
            make_vote(i, [Relay(fingerprint=FP, nickname="r")] if i < 4 else [])
            for i in range(9)
        ]
        consensus = aggregate_votes(votes)
        assert FP in consensus.relays


class TestFigure2Rules:
    def test_nickname_from_largest_authority_id(self):
        votes = [
            make_vote(0, [Relay(fingerprint=FP, nickname="alpha")]),
            make_vote(3, [Relay(fingerprint=FP, nickname="bravo")]),
            make_vote(7, [Relay(fingerprint=FP, nickname="charlie")]),
        ]
        consensus = aggregate_votes(votes)
        assert consensus.relays[FP].nickname == "charlie"

    def test_flag_majority_and_tie_breaks_to_unset(self):
        flagged = Relay(fingerprint=FP, nickname="r", flags=frozenset({RelayFlag.FAST}))
        plain = Relay(fingerprint=FP, nickname="r")
        # 2 of 4 votes set Fast -> tie -> not set.
        votes = [make_vote(i, [flagged if i < 2 else plain]) for i in range(4)]
        assert RelayFlag.FAST not in aggregate_votes(votes).relays[FP].flags
        # 3 of 4 set Fast -> majority -> set.
        votes = [make_vote(i, [flagged if i < 3 else plain]) for i in range(4)]
        assert RelayFlag.FAST in aggregate_votes(votes).relays[FP].flags

    def test_largest_version_selected(self):
        versions = ["Tor 0.4.7.16", "Tor 0.4.8.12", "Tor 0.4.8.9"]
        votes = [
            make_vote(i, [Relay(fingerprint=FP, nickname="r", version=v)])
            for i, v in enumerate(versions)
        ]
        assert aggregate_votes(votes).relays[FP].version == "Tor 0.4.8.12"

    def test_version_sort_key_is_numeric_not_lexicographic(self):
        assert version_sort_key("Tor 0.4.8.10") > version_sort_key("Tor 0.4.8.9")

    def test_exit_policy_tie_breaks_to_lexicographically_larger(self):
        policy_a = ExitPolicySummary(accept=True, ports="80,443")
        policy_b = ExitPolicySummary(accept=False, ports="25")
        votes = [
            make_vote(0, [Relay(fingerprint=FP, nickname="r", exit_policy=policy_a)]),
            make_vote(1, [Relay(fingerprint=FP, nickname="r", exit_policy=policy_b)]),
        ]
        chosen = aggregate_votes(votes).relays[FP].exit_policy
        assert chosen == max([policy_a, policy_b], key=lambda p: p.sort_key())

    def test_bandwidth_is_median_of_measured_votes(self):
        bandwidths = [(100, True), (300, True), (900, True), (50, False)]
        votes = [
            make_vote(i, [Relay(fingerprint=FP, nickname="r", bandwidth=b, measured=m)])
            for i, (b, m) in enumerate(bandwidths)
        ]
        result = aggregate_votes(votes).relays[FP]
        assert result.bandwidth == 300
        assert result.measured

    def test_bandwidth_falls_back_to_all_votes_when_unmeasured(self):
        votes = [
            make_vote(i, [Relay(fingerprint=FP, nickname="r", bandwidth=b, measured=False)])
            for i, b in enumerate([10, 20, 30])
        ]
        result = aggregate_votes(votes).relays[FP]
        assert result.bandwidth == 20
        assert not result.measured


class TestAggregateVotes:
    def test_empty_vote_set_rejected(self):
        with pytest.raises(ValidationError):
            aggregate_votes([])

    def test_duplicate_authority_rejected(self):
        vote = make_vote(1, [Relay(fingerprint=FP, nickname="r")])
        with pytest.raises(ValidationError):
            aggregate_votes([vote, vote])

    def test_order_independence(self):
        votes = [
            make_vote(i, [Relay(fingerprint=FP, nickname="r%d" % i, bandwidth=100 * (i + 1))])
            for i in range(5)
        ]
        forward = aggregate_votes(votes)
        backward = aggregate_votes(list(reversed(votes)))
        assert forward.digest() == backward.digest()

    def test_source_digests_recorded_in_authority_order(self):
        votes = [make_vote(i, [Relay(fingerprint=FP, nickname="r")]) for i in (4, 1, 7)]
        consensus = aggregate_votes(votes)
        expected = [v.digest_hex() for v in sorted(votes, key=lambda v: v.authority_id)]
        assert list(consensus.source_vote_digests) == expected

    def test_aggregate_relay_returns_none_for_empty(self):
        assert aggregate_relay({}, total_votes=5, config=AggregationConfig()) is None


# -- property-based tests -------------------------------------------------------

relay_strategy = st.builds(
    Relay,
    fingerprint=st.just(FP),
    nickname=st.sampled_from(["alpha", "bravo", "charlie"]),
    flags=st.sets(st.sampled_from([RelayFlag.FAST, RelayFlag.GUARD, RelayFlag.RUNNING])).map(frozenset),
    version=st.sampled_from(["Tor 0.4.7.16", "Tor 0.4.8.12", "Tor 0.4.8.13"]),
    bandwidth=st.integers(min_value=1, max_value=10_000),
    measured=st.booleans(),
)


@settings(max_examples=50, deadline=None)
@given(st.lists(relay_strategy, min_size=1, max_size=9))
def test_aggregation_determinism_and_majority_properties(entries):
    votes = [make_vote(i, [relay]) for i, relay in enumerate(entries)]
    consensus_a = aggregate_votes(votes)
    consensus_b = aggregate_votes(list(reversed(votes)))
    # Determinism / order independence.
    assert consensus_a.digest() == consensus_b.digest()
    if FP in consensus_a.relays:
        result = consensus_a.relays[FP]
        # The bandwidth must be one of the voted bandwidths (median property).
        assert result.bandwidth in {relay.bandwidth for relay in entries}
        # Any flag in the output was set by a strict majority of the votes.
        for flag in result.flags:
            count = sum(1 for relay in entries if flag in relay.flags)
            assert count * 2 > len(entries)
        # The version is the maximum voted version.
        assert result.version == max((r.version for r in entries), key=version_sort_key)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=9),
    st.integers(min_value=1, max_value=9),
)
def test_inclusion_monotone_in_vote_count(votes_for_relay, total):
    votes_for_relay = min(votes_for_relay, total)
    config = AggregationConfig()
    included = votes_for_relay >= config.inclusion_threshold(total)
    votes = [
        make_vote(i, [Relay(fingerprint=FP, nickname="r")] if i < votes_for_relay else [])
        for i in range(total)
    ]
    consensus = aggregate_votes(votes)
    assert (FP in consensus.relays) == included


class TestAggregationCaches:
    def test_memo_size_capped(self):
        from repro.directory.aggregate import (
            _AGGREGATION_MEMO_MAX,
            _aggregation_memo,
            clear_aggregation_caches,
        )

        clear_aggregation_caches()
        try:
            for seed in range(_AGGREGATION_MEMO_MAX + 8):
                votes = [
                    make_vote(
                        i,
                        [Relay(fingerprint=FP, nickname="r%d" % seed)],
                    )
                    for i in range(3)
                ]
                aggregate_votes(votes)
            # Distinct vote sets each add an entry; the memo must evict
            # rather than grow without bound across a sweep.
            assert len(_aggregation_memo) <= _AGGREGATION_MEMO_MAX
        finally:
            clear_aggregation_caches()

    def test_clear_hook_empties_both_caches(self):
        from repro.directory.aggregate import (
            _aggregation_memo,
            clear_aggregation_caches,
        )

        votes = [
            make_vote(i, [Relay(fingerprint=FP, nickname="r")]) for i in range(3)
        ]
        aggregate_votes(votes)
        version_sort_key("Tor 0.4.8.12")
        assert len(_aggregation_memo) > 0
        assert version_sort_key.cache_info().currsize > 0
        clear_aggregation_caches()
        assert len(_aggregation_memo) == 0
        assert version_sort_key.cache_info().currsize == 0

    def test_sweep_worker_setup_clears_aggregation_memo(self):
        from repro.directory.aggregate import _aggregation_memo
        from repro.runtime.executor import sweep_worker_setup

        votes = [
            make_vote(i, [Relay(fingerprint=FP, nickname="r")]) for i in range(3)
        ]
        aggregate_votes(votes)
        assert len(_aggregation_memo) > 0
        sweep_worker_setup()
        assert len(_aggregation_memo) == 0
