"""Test package."""
