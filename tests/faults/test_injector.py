"""FaultInjector enforcement at the SimNetwork seam (unit level)."""

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, LinkFault
from repro.simnet.message import Message
from repro.simnet.network import LinkConfig, SimNetwork
from repro.simnet.node import ProtocolNode


class Recorder(ProtocolNode):
    """Node that records every delivery."""

    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def on_message(self, message, now):
        self.received.append((message.msg_type, message.sender, now))


def make_network(names=("a", "b", "c"), mbps=8.0, latency=0.0):
    network = SimNetwork(default_latency_s=latency)
    nodes = {}
    for name in names:
        node = Recorder(name)
        network.add_node(node, LinkConfig.symmetric_mbps(mbps))
        nodes[name] = node
    return network, nodes


def install(network, plan, seed=7, names=("a", "b", "c")):
    injector = FaultInjector(plan, seed=seed, authority_names=dict(enumerate(names)))
    injector.install(network)
    return injector


def test_certain_loss_drops_everything_and_accounts_it():
    network, nodes = make_network()
    plan = FaultPlan.lossy_links((0,), drop_probability=1.0)
    injector = install(network, plan)
    for _ in range(5):
        network.send("a", "b", Message(msg_type="DOC", size_bytes=1000))
    network.run()
    assert nodes["b"].received == []
    assert network.stats.messages_dropped == 5
    assert network.stats.messages_sent == 5
    assert injector.drops_by_cause["loss"] == 5


def test_loss_applies_to_ingress_of_the_faulted_authority_too():
    network, nodes = make_network()
    injector = install(network, FaultPlan.lossy_links((0,), drop_probability=1.0))
    network.send("b", "a", Message(msg_type="DOC", size_bytes=1000))
    network.run()
    assert nodes["a"].received == []
    assert injector.messages_dropped == 1


def test_partition_window_blocks_only_within_the_window():
    network, nodes = make_network()
    install(network, FaultPlan.partition((0,), start=10.0, end=20.0))
    simulator = network.simulator
    simulator.schedule(5.0, lambda: network.send("a", "b", Message(msg_type="EARLY", size_bytes=0)))
    simulator.schedule(15.0, lambda: network.send("a", "b", Message(msg_type="MID", size_bytes=0)))
    simulator.schedule(25.0, lambda: network.send("a", "b", Message(msg_type="LATE", size_bytes=0)))
    network.run()
    assert [entry[0] for entry in nodes["b"].received] == ["EARLY", "LATE"]
    assert network.stats.messages_dropped == 1


def test_partition_cuts_a_transfer_still_in_flight_at_delivery_time():
    # 8 Mbit/s = 1 MB/s: a 5 MB transfer started at t=0 completes at t=5,
    # inside the partition window, so it is cut at the delivery instant.
    network, nodes = make_network(mbps=8.0)
    injector = install(network, FaultPlan.partition((1,), start=2.0, end=10.0))
    network.send("a", "b", Message(msg_type="DOC", size_bytes=5_000_000))
    network.run()
    assert nodes["b"].received == []
    assert injector.drops_by_cause["partition"] == 1


def test_jitter_delays_delivery_within_bound_and_is_deterministic():
    def arrivals(seed):
        network, nodes = make_network(latency=0.5)
        install(network, FaultPlan.lossy_links((0,), drop_probability=0.0) | FaultPlan(
            link_faults=(LinkFault(authority_id=0, jitter_s=2.0),)
        ), seed=seed)
        for _ in range(10):
            network.send("a", "b", Message(msg_type="PING", size_bytes=0))
        network.run()
        return [entry[2] for entry in nodes["b"].received]

    first = arrivals(seed=3)
    assert first == arrivals(seed=3)
    assert first != arrivals(seed=4)
    assert all(0.5 <= arrival <= 2.5 for arrival in first)
    assert len(set(first)) > 1  # actually jittered, not constant


def test_windowed_jitter_applies_only_inside_the_windows():
    # A jitter fault confined by loss_windows must leave deliveries outside
    # the window at exactly the base latency (and consume no draws for
    # them); only the in-window delivery is jittered.
    network, nodes = make_network(latency=0.5)
    install(network, FaultPlan(
        link_faults=(
            LinkFault(authority_id=0, jitter_s=2.0, loss_windows=((10.0, 20.0),)),
        )
    ))
    simulator = network.simulator
    for at, tag in ((5.0, "BEFORE"), (15.0, "DURING"), (25.0, "AFTER")):
        simulator.schedule(
            at, lambda tag=tag: network.send("a", "b", Message(msg_type=tag, size_bytes=0))
        )
    network.run()
    arrivals = {tag: at for tag, _sender, at in nodes["b"].received}
    assert arrivals["BEFORE"] == 5.5  # exactly latency: bit-identical, no draw
    assert arrivals["AFTER"] == 25.5
    assert 15.5 < arrivals["DURING"] <= 17.5  # jittered within the bound


def test_loss_window_opening_mid_flight_cuts_the_delivery():
    # 8 Mbit/s = 1 MB/s: a 5 MB transfer started at t=0 delivers at t=5,
    # inside a loss window that opened at t=2 — after the send-instant draw
    # (exposure 0 at t=0).  The delivery-instant residual check must expose
    # it to the full window probability and cut it.
    network, nodes = make_network(mbps=8.0)
    injector = install(
        network,
        FaultPlan.lossy_links((1,), drop_probability=1.0, windows=[(2.0, 10.0)]),
    )
    network.send("a", "b", Message(msg_type="DOC", size_bytes=5_000_000))
    network.run()
    assert nodes["b"].received == []
    assert injector.drops_by_cause["loss"] == 1


def test_constant_loss_consumes_no_delivery_draws():
    # Whole-run loss has identical exposure at send and delivery instants,
    # so the residual check must never fire a draw: pre-fix trajectories
    # (send-draw-only) stay bit-for-bit.
    network, nodes = make_network(mbps=8.0)
    injector = install(network, FaultPlan.lossy_links((0,), drop_probability=0.5))
    for _ in range(10):
        network.send("a", "b", Message(msg_type="DOC", size_bytes=100_000))
    network.run()
    assert ("loss", "a", "b") in injector._draw_streams
    assert ("loss-delivery", "a", "b") not in injector._draw_streams
    delivered = len(nodes["b"].received)
    assert delivered + injector.drops_by_cause["loss"] == 10


def test_crashed_authority_sends_receives_and_times_nothing():
    network, nodes = make_network()
    injector = install(network, FaultPlan.crash(1, [(10.0, 30.0)]))
    fired = []
    simulator = network.simulator
    # b's timer fires inside its crash window: suppressed.
    nodes["b"].set_timer_at(15.0, lambda: fired.append("down"))
    # b's timer after restart: runs.
    nodes["b"].set_timer_at(35.0, lambda: fired.append("up"))
    # Ingress to b while down is dropped; egress from b while down is dropped.
    simulator.schedule(12.0, lambda: network.send("a", "b", Message(msg_type="IN", size_bytes=0)))
    simulator.schedule(14.0, lambda: network.send("b", "c", Message(msg_type="OUT", size_bytes=0)))
    # After restart both directions work again.
    simulator.schedule(40.0, lambda: network.send("a", "b", Message(msg_type="IN2", size_bytes=0)))
    network.run()
    assert fired == ["up"]
    assert [entry[0] for entry in nodes["b"].received] == ["IN2"]
    assert nodes["c"].received == []
    assert injector.drops_by_cause["crash"] == 2


def test_crashed_at_start_boots_late():
    network, nodes = make_network()
    booted = []
    nodes["a"].on_start = lambda: booted.append(("a", network.simulator.now))
    nodes["b"].on_start = lambda: booted.append(("b", network.simulator.now))
    # Back-to-back windows: the deferred boot must skip through both.
    install(network, FaultPlan.crash(0, [(0.0, 5.0), (5.0, 8.0)]))
    network.start(at=0.0)
    network.run()
    assert booted == [("b", 0.0), ("a", 8.0)]


def test_loss_windows_confine_the_drop_probability():
    network, nodes = make_network()
    injector = install(
        network,
        FaultPlan.lossy_links((0,), drop_probability=1.0, windows=[(10.0, 20.0)]),
    )
    simulator = network.simulator
    for at, tag in ((5.0, "BEFORE"), (15.0, "DURING"), (25.0, "AFTER")):
        simulator.schedule(
            at, lambda tag=tag: network.send("a", "b", Message(msg_type=tag, size_bytes=0))
        )
    network.run()
    assert [entry[0] for entry in nodes["b"].received] == ["BEFORE", "AFTER"]
    assert injector.drops_by_cause["loss"] == 1


def test_withholding_authority_sends_nothing_but_still_receives():
    network, nodes = make_network()
    injector = install(network, FaultPlan.byzantine(0, "withhold"))
    network.send("a", "b", Message(msg_type="OUT", size_bytes=0))
    network.send("b", "a", Message(msg_type="IN", size_bytes=0))
    network.run()
    assert nodes["b"].received == []
    assert [entry[0] for entry in nodes["a"].received] == ["IN"]
    assert injector.drops_by_cause["withhold"] == 1


def test_fault_windows_appear_in_the_trace():
    network, _nodes = make_network()
    install(network, FaultPlan.crash(0, [(5.0, 10.0)]) | FaultPlan.partition((1,), 2.0, 4.0))
    network.run()
    trace = network.trace
    assert trace.contains("authority crashed", node="a")
    assert trace.contains("authority restarted", node="a")
    assert trace.contains("partitioned from all peers", node="b")
    assert trace.contains("partition healed", node="b")


def test_injector_requires_names_for_every_faulted_authority():
    from repro.utils.validation import ValidationError

    with pytest.raises(ValidationError):
        FaultInjector(FaultPlan.crash(5, [(0.0, 1.0)]), seed=1, authority_names={0: "a"})


def test_fault_summary_reports_accounting():
    network, _nodes = make_network()
    injector = install(
        network,
        FaultPlan.crash(0, [(0.0, 10.0)])
        | FaultPlan.partition((1,), 0.0, 20.0)
        | FaultPlan.byzantine(2, "equivocate"),
    )
    network.run()
    summary = injector.fault_summary(end_time=15.0)
    assert summary["authority_down_seconds"] == 10.0
    assert summary["partition_seconds"] == 15.0
    assert summary["authorities_crashed"] == [0]
    assert summary["authorities_equivocating"] == [2]
    assert summary["authorities_withholding"] == []
