"""FaultPlan/LinkFault/AuthorityFault: validation, canonicalization, hashing."""

import pytest

from repro.faults.plan import (
    EMPTY_FAULT_PLAN,
    AuthorityFault,
    FaultPlan,
    LinkFault,
)
from repro.utils.validation import ValidationError


# -- rejection of malformed faults (the validation-gap satellite) -------------

def test_negative_drop_probability_is_rejected():
    with pytest.raises(ValidationError):
        LinkFault(authority_id=0, drop_probability=-0.1)


def test_drop_probability_above_one_is_rejected():
    with pytest.raises(ValidationError):
        LinkFault(authority_id=0, drop_probability=1.5)


def test_negative_jitter_is_rejected():
    with pytest.raises(ValidationError):
        LinkFault(authority_id=0, jitter_s=-1.0)


def test_overlapping_crash_windows_are_rejected():
    with pytest.raises(ValidationError):
        AuthorityFault(authority_id=0, crash_windows=((0.0, 100.0), (50.0, 150.0)))


def test_inverted_and_negative_windows_are_rejected():
    with pytest.raises(ValidationError):
        AuthorityFault(authority_id=0, crash_windows=((100.0, 50.0),))
    with pytest.raises(ValidationError):
        LinkFault(authority_id=0, partition_windows=((-5.0, 10.0),))


def test_unknown_byzantine_mode_is_rejected():
    with pytest.raises(ValidationError):
        AuthorityFault(authority_id=0, byzantine="omit")


def test_duplicate_fault_per_authority_is_rejected():
    with pytest.raises(ValidationError):
        FaultPlan(
            link_faults=(
                LinkFault(authority_id=1, drop_probability=0.1),
                LinkFault(authority_id=1, jitter_s=0.5),
            )
        )


def test_unknown_authority_id_is_rejected_by_validate_for():
    plan = FaultPlan.crash(7, [(0.0, 10.0)])
    with pytest.raises(ValidationError):
        plan.validate_for(authority_count=5)
    plan.validate_for(authority_count=9)  # id 7 exists in a 9-authority run


# -- canonicalization and hashing --------------------------------------------

def test_noop_faults_are_dropped_and_order_is_canonical():
    noisy = FaultPlan(
        link_faults=(
            LinkFault(authority_id=3, drop_probability=0.2),
            LinkFault(authority_id=1),  # no-op
            LinkFault(authority_id=0, jitter_s=1.0),
        ),
        authority_faults=(AuthorityFault(authority_id=2),),  # no-op
    )
    tidy = FaultPlan(
        link_faults=(
            LinkFault(authority_id=0, jitter_s=1.0),
            LinkFault(authority_id=3, drop_probability=0.2),
        )
    )
    assert noisy == tidy
    assert noisy.plan_hash() == tidy.plan_hash()
    assert hash(noisy) == hash(tidy)


def test_empty_plan_is_falsy_and_distinct_plans_hash_differently():
    assert not EMPTY_FAULT_PLAN
    assert EMPTY_FAULT_PLAN.is_empty
    a = FaultPlan.partition((0, 1), 0.0, 10.0)
    b = FaultPlan.partition((0, 1), 0.0, 20.0)
    assert a and a.plan_hash() != b.plan_hash() != EMPTY_FAULT_PLAN.plan_hash()


def test_windows_are_sorted_by_start():
    fault = AuthorityFault(authority_id=0, crash_windows=((50.0, 60.0), (0.0, 10.0)))
    assert fault.crash_windows == ((0.0, 10.0), (50.0, 60.0))


# -- composition ---------------------------------------------------------------

def test_merged_combines_disjoint_plans():
    merged = FaultPlan.partition((0,), 0.0, 10.0) | FaultPlan.byzantine(1, "withhold")
    assert merged.link_fault_for(0) is not None
    assert merged.authority_fault_for(1).byzantine == "withhold"
    assert merged.faulted_authority_ids() == (0, 1)


def test_merged_rejects_colliding_authorities():
    with pytest.raises(ValidationError):
        FaultPlan.byzantine(1, "withhold").merged(FaultPlan.byzantine(1, "equivocate"))


# -- time queries and accounting ----------------------------------------------

def test_window_membership_is_half_open():
    fault = LinkFault(authority_id=0, partition_windows=((10.0, 20.0),))
    assert not fault.partitioned_at(9.999)
    assert fault.partitioned_at(10.0)
    assert fault.partitioned_at(19.999)
    assert not fault.partitioned_at(20.0)


def test_accounting_clips_windows_to_run_end():
    plan = FaultPlan(
        link_faults=(LinkFault(authority_id=0, partition_windows=((0.0, 300.0),)),),
        authority_faults=(
            AuthorityFault(authority_id=1, crash_windows=((100.0, 200.0), (250.0, 400.0))),
        ),
    )
    assert plan.partition_seconds(until=150.0) == 150.0
    assert plan.partition_seconds(until=1000.0) == 300.0
    assert plan.down_seconds(until=300.0) == 100.0 + 50.0
    assert plan.last_fault_end() == 400.0


def test_byzantine_and_crash_rosters():
    plan = (
        FaultPlan.crash(2, [(0.0, 5.0)])
        | FaultPlan.byzantine(0, "equivocate")
        | FaultPlan.byzantine(1, "withhold")
    )
    assert plan.crashing_authority_ids() == (2,)
    assert plan.byzantine_authority_ids("equivocate") == (0,)
    assert plan.byzantine_authority_ids("withhold") == (1,)


# -- serialization -------------------------------------------------------------

def test_plan_round_trips_through_dict():
    plan = FaultPlan(
        link_faults=(
            LinkFault(
                authority_id=0,
                partition_windows=((5.0, 25.0),),
                drop_probability=0.25,
                jitter_s=0.75,
            ),
        ),
        authority_faults=(
            AuthorityFault(authority_id=1, crash_windows=((10.0, 20.0),)),
            AuthorityFault(authority_id=2, byzantine="equivocate"),
        ),
    )
    clone = FaultPlan.from_dict(plan.to_dict())
    assert clone == plan
    assert clone.plan_hash() == plan.plan_hash()


def test_loss_windows_require_a_drop_probability_and_join_key_and_dict():
    with pytest.raises(ValidationError):
        LinkFault(authority_id=0, loss_windows=((0.0, 10.0),))
    fault = LinkFault(authority_id=0, drop_probability=0.5, loss_windows=((0.0, 10.0),))
    bare = LinkFault(authority_id=0, drop_probability=0.5)
    assert fault.key() != bare.key()
    assert LinkFault.from_dict(fault.to_dict()) == fault
    plan = FaultPlan(link_faults=(fault,))
    assert plan.last_fault_end() == 10.0


def test_loss_windows_confine_jitter_and_accept_jitter_only_faults():
    # jitter_s alone justifies loss_windows (previously only the drop
    # probability did), and jitter_at mirrors loss_probability_at's
    # windowing: zero outside, the declared bound inside.
    fault = LinkFault(authority_id=0, jitter_s=1.5, loss_windows=((5.0, 10.0),))
    assert fault.jitter_at(2.0) == 0.0
    assert fault.jitter_at(7.0) == 1.5
    assert fault.jitter_at(10.0) == 0.0  # half-open window
    # A window-less fault jitters the whole run.
    assert LinkFault(authority_id=0, jitter_s=1.5).jitter_at(1e9) == 1.5
