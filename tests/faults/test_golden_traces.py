"""Golden-trace regression: canonical run summaries must reproduce exactly.

One small canonical :class:`RunSpec` per protocol (each carrying a modest
fault plan, so fault semantics are pinned too) is committed under
``tests/data/`` together with the byte-exact summary it produced.  Any
refactor that changes simulation results — event ordering, float
arithmetic, fault enforcement, accounting — fails these tests instead of
silently shifting every figure.

To intentionally re-baseline after a *deliberate* semantic change, rebuild
the files:

    PYTHONPATH=src python tests/faults/test_golden_traces.py regenerate
"""

import json
import sys
from pathlib import Path

import pytest

from repro.protocols.runner import execute_spec
from repro.runtime.spec import RunSpec

DATA_DIR = Path(__file__).resolve().parent.parent / "data"
PROTOCOLS = ("current", "synchronous", "ours")


def golden_path(protocol: str) -> Path:
    return DATA_DIR / ("golden_%s.json" % protocol)


def _canonical_specs():
    from repro.faults.plan import FaultPlan

    plan = FaultPlan.crash(1, [(60.0, 180.0)]) | FaultPlan.lossy_links(
        (0,), 0.1, jitter_s=0.2
    )
    common = dict(relay_count=40, authority_count=5, seed=11, fault_plan=plan)
    return {
        "current": RunSpec(protocol="current", max_time=700.0, **common),
        "synchronous": RunSpec(protocol="synchronous", max_time=700.0, **common),
        "ours": RunSpec(protocol="ours", max_time=400.0, **common),
    }


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_execute_spec_reproduces_the_golden_summary_exactly(protocol):
    entry = json.loads(golden_path(protocol).read_text())
    spec = RunSpec.from_dict(entry["spec"])
    # The committed spec must be the canonical one (guards the data files).
    assert spec == _canonical_specs()[protocol]
    assert execute_spec(spec).summary() == entry["summary"]


def regenerate() -> None:  # pragma: no cover - maintenance entry point
    for protocol, spec in _canonical_specs().items():
        summary = execute_spec(spec).summary()
        golden_path(protocol).write_text(
            json.dumps({"spec": spec.to_dict(), "summary": summary}, indent=2, sort_keys=True)
            + "\n"
        )
        print("rebaselined", golden_path(protocol))


if __name__ == "__main__" and "regenerate" in sys.argv[1:]:  # pragma: no cover
    regenerate()
