"""Cross-protocol conformance under seeded random FaultPlans.

Property-based: hypothesis draws seeds, and each seed deterministically
expands into a random :class:`FaultPlan` (partitions, crash windows, loss,
jitter, Byzantine modes).  The invariants hold for *every* protocol and
*every* plan:

* deterministic replay — same spec (including plan) ⇒ identical summary;
* fault accounting consistency — dropped ≤ sent, delivered + timed-out +
  dropped ≤ sent, and the injector's count matches the transport's;
* safety — no authority outputs a consensus while a quorum is fully
  partitioned;
* executor transparency — a faulted sweep is bit-identical at 1 and N
  workers (N from ``REPRO_FAULTS_WORKERS``, default 2) and round-trips
  through the ResultCache.
"""

import os
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.plan import AuthorityFault, FaultPlan, LinkFault
from repro.protocols.runner import execute_spec
from repro.runtime.cache import ResultCache
from repro.runtime.executor import SweepExecutor
from repro.runtime.spec import PROTOCOL_NAMES, RunSpec

#: Worker count for the parallel-determinism checks (CI runs a 2-worker leg).
WORKERS = int(os.environ.get("REPRO_FAULTS_WORKERS", "2"))

#: Small-but-real run shape shared by every conformance property.
AUTHORITY_COUNT = 5
RELAY_COUNT = 30
MAX_TIME = 700.0

#: Every registered transport model; fault enforcement happens at the
#: network seams, so the invariants must hold under all of them.
TRANSPORTS = ("fair", "fifo", "tcp", "latency-only")

SLOW_PROPERTY = settings(
    max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def base_spec(protocol: str, seed: int, plan: FaultPlan, transport: str = "fair") -> RunSpec:
    return RunSpec(
        protocol=protocol,
        relay_count=RELAY_COUNT,
        authority_count=AUTHORITY_COUNT,
        seed=seed,
        max_time=MAX_TIME,
        transport=transport,
        fault_plan=plan,
    )


def random_window(rng: random.Random, horizon: float):
    start = rng.uniform(0.0, horizon * 0.6)
    return (start, start + rng.uniform(5.0, horizon * 0.4))


def random_fault_plan(seed: int, authority_count: int = AUTHORITY_COUNT) -> FaultPlan:
    """Expand a seed into a random-but-valid plan (the property-test generator)."""
    rng = random.Random("plan:%d" % seed)
    link_ids = rng.sample(range(authority_count), rng.randint(0, authority_count - 1))
    link_faults = []
    for authority_id in link_ids:
        kind = rng.choice(("partition", "loss", "jitter", "mixed"))
        link_faults.append(
            LinkFault(
                authority_id=authority_id,
                partition_windows=(random_window(rng, MAX_TIME),)
                if kind in ("partition", "mixed")
                else (),
                drop_probability=rng.uniform(0.0, 0.3) if kind in ("loss", "mixed") else 0.0,
                jitter_s=rng.uniform(0.0, 1.0) if kind in ("jitter", "mixed") else 0.0,
            )
        )
    authority_ids = rng.sample(range(authority_count), rng.randint(0, 2))
    authority_faults = []
    for authority_id in authority_ids:
        kind = rng.choice(("crash", "equivocate", "withhold"))
        if kind == "crash":
            first = random_window(rng, MAX_TIME * 0.5)
            windows = [first]
            if rng.random() < 0.5:
                offset = first[1] + rng.uniform(1.0, 50.0)
                windows.append((offset, offset + rng.uniform(5.0, 100.0)))
            authority_faults.append(
                AuthorityFault(authority_id=authority_id, crash_windows=tuple(windows))
            )
        else:
            authority_faults.append(
                AuthorityFault(authority_id=authority_id, byzantine=kind)
            )
    return FaultPlan(link_faults=tuple(link_faults), authority_faults=tuple(authority_faults))


@SLOW_PROPERTY
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    protocol=st.sampled_from(PROTOCOL_NAMES),
    transport=st.sampled_from(TRANSPORTS),
)
def test_random_plans_replay_deterministically_and_account_consistently(
    seed, protocol, transport
):
    plan = random_fault_plan(seed)
    spec = base_spec(protocol, seed=seed % 1000, plan=plan, transport=transport)
    first = execute_spec(spec).summary()
    second = execute_spec(spec).summary()
    assert first == second  # same spec + seed ⇒ identical summary

    stats = first["stats"]
    assert stats["messages_dropped"] <= stats["messages_sent"]
    assert (
        stats["messages_delivered"] + stats["messages_timed_out"] + stats["messages_dropped"]
        <= stats["messages_sent"]
    )
    if plan.is_empty:
        assert first["faults"] == {}
    else:
        faults = first["faults"]
        # The injector's ledger and the transport's ledger must agree.
        assert faults["messages_dropped"] == stats["messages_dropped"]
        assert sum(faults["drops_by_cause"].values()) == faults["messages_dropped"]
        assert faults["partition_seconds"] == plan.partition_seconds(first["end_time"])
        assert faults["authority_down_seconds"] == plan.down_seconds(first["end_time"])


@settings(max_examples=4, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    protocol=st.sampled_from(PROTOCOL_NAMES),
)
def test_no_consensus_output_during_a_full_quorum_partition(seed, protocol):
    rng = random.Random("quorum:%d" % seed)
    quorum = AUTHORITY_COUNT // 2 + 1
    partitioned = rng.sample(range(AUTHORITY_COUNT), quorum)
    partition_end = 600.0
    plan = FaultPlan.partition(partitioned, start=0.0, end=partition_end)
    result = execute_spec(base_spec(protocol, seed=seed % 1000, plan=plan))
    # With a quorum unreachable from t=0, nobody may output a consensus
    # before the partition heals (and, votes being unretransmitted, the run
    # as a whole must fail).
    assert not result.success
    for outcome in result.outcomes.values():
        assert outcome.completion_time is None or outcome.completion_time >= partition_end


def test_faulted_sweep_is_identical_serial_and_parallel(tmp_path):
    plans = [
        random_fault_plan(101),
        FaultPlan.partition((0, 1), 5.0, 200.0),
        FaultPlan.byzantine(0, "equivocate") | FaultPlan.crash(2, [(20.0, 120.0)]),
    ]
    specs = [
        base_spec(protocol, seed=13, plan=plan, transport=transport)
        for plan in plans
        for protocol in ("current", "ours")
        for transport in TRANSPORTS
    ]
    serial = SweepExecutor(workers=1).run_summaries(specs)
    cache = ResultCache(tmp_path / "cache")
    parallel_executor = SweepExecutor(workers=WORKERS, cache=cache)
    parallel = parallel_executor.run_summaries(specs)
    assert parallel == serial
    assert parallel_executor.executed_runs == len(specs)

    warm = SweepExecutor(workers=WORKERS, cache=cache)
    assert warm.run_summaries(specs) == serial
    assert warm.executed_runs == 0
    assert warm.cache_hits == len(specs)


def test_faulted_spec_hashes_and_caches_independently_of_its_twin(tmp_path):
    plan = FaultPlan.partition((0, 1), 0.0, 120.0)
    faulted = base_spec("ours", seed=7, plan=plan)
    twin = faulted.derive(fault_plan=FaultPlan())
    assert faulted.spec_hash() != twin.spec_hash()

    cache = ResultCache(tmp_path / "cache")
    executor = SweepExecutor(workers=1, cache=cache)
    faulted_summary = executor.run_summaries([faulted])[0]
    twin_summary = executor.run_summaries([twin])[0]
    assert faulted_summary != twin_summary
    assert cache.get(faulted) == faulted_summary
    assert cache.get(twin) == twin_summary
    # Round-trip: the cached entry regenerates the same result object.
    rebuilt = SweepExecutor(workers=1, cache=cache)
    assert rebuilt.run_one(faulted).summary() == faulted_summary
    assert rebuilt.executed_runs == 0
