"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.crypto.keys import KeyPair, KeyRing
from repro.directory.authority import make_authorities
from repro.netgen.relaygen import RelayPopulationConfig, generate_population
from repro.netgen.views import AuthorityViewConfig, generate_authority_votes


@pytest.fixture(scope="session")
def nine_authorities():
    """The live-network configuration: nine authorities plus their key ring."""
    authorities, ring = make_authorities(9, seed=7)
    return authorities, ring


@pytest.fixture(scope="session")
def small_population():
    """A small relay population shared by aggregation-level tests."""
    return generate_population(RelayPopulationConfig(relay_count=40, seed=3))


@pytest.fixture(scope="session")
def small_votes(nine_authorities, small_population):
    """One vote per authority over the small population."""
    authorities, _ring = nine_authorities
    return generate_authority_votes(
        small_population, authorities, config=AuthorityViewConfig(seed=5)
    )


@pytest.fixture()
def keyring_four():
    """Four named key pairs plus the ring, for ICPS unit tests."""
    names = ("a0", "a1", "a2", "a3")
    pairs = {name: KeyPair.generate(name, b"test-seed") for name in names}
    return names, pairs, KeyRing(pairs.values())
