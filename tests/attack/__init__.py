"""Test package."""
