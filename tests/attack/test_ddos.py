"""DDoS attack plan tests."""

import pytest

from repro.attack.ddos import (
    ATTACK_RESIDUAL_BANDWIDTH_MBPS,
    DDoSAttackPlan,
    majority_attack_plan,
)
from repro.utils.units import mbps_to_bytes_per_s


def test_majority_plan_targets_five_of_nine():
    plan = majority_attack_plan()
    assert plan.target_count == 5
    assert plan.target_authority_ids == (0, 1, 2, 3, 4)
    assert plan.duration == 300.0
    assert plan.end == 300.0
    assert plan.residual_bandwidth_mbps == ATTACK_RESIDUAL_BANDWIDTH_MBPS


def test_schedule_reflects_attack_window():
    plan = DDoSAttackPlan(target_authority_ids=(2, 5), start=100.0, duration=200.0)
    schedule = plan.schedule_for_target()
    assert schedule.rate_at(0) == pytest.approx(mbps_to_bytes_per_s(250))
    assert schedule.rate_at(150) == pytest.approx(mbps_to_bytes_per_s(0.5))
    assert schedule.rate_at(301) == pytest.approx(mbps_to_bytes_per_s(250))
    schedules = plan.schedules()
    assert set(schedules) == {2, 5}


def test_attack_traffic_is_link_minus_requirement():
    plan = majority_attack_plan()
    assert plan.attack_traffic_mbps(10.0) == pytest.approx(240.0)
    assert plan.attack_traffic_mbps(300.0) == 0.0
    with pytest.raises(Exception):
        plan.attack_traffic_mbps(-1)


def test_invalid_plans_rejected():
    with pytest.raises(Exception):
        DDoSAttackPlan(target_authority_ids=(), duration=300)
    with pytest.raises(Exception):
        DDoSAttackPlan(target_authority_ids=(0,), duration=0)
    with pytest.raises(Exception):
        DDoSAttackPlan(target_authority_ids=(0,), start=-5)


def test_majority_plan_for_other_sizes():
    assert majority_attack_plan(authority_count=5).target_count == 3
    assert majority_attack_plan(authority_count=7).target_count == 4
