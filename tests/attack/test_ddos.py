"""DDoS attack plan tests."""

import pytest

from repro.attack.ddos import (
    ATTACK_RESIDUAL_BANDWIDTH_MBPS,
    DDoSAttackPlan,
    majority_attack_plan,
)
from repro.utils.units import mbps_to_bytes_per_s


def test_majority_plan_targets_five_of_nine():
    plan = majority_attack_plan()
    assert plan.target_count == 5
    assert plan.target_authority_ids == (0, 1, 2, 3, 4)
    assert plan.duration == 300.0
    assert plan.end == 300.0
    assert plan.residual_bandwidth_mbps == ATTACK_RESIDUAL_BANDWIDTH_MBPS


def test_schedule_reflects_attack_window():
    plan = DDoSAttackPlan(target_authority_ids=(2, 5), start=100.0, duration=200.0)
    schedule = plan.schedule_for_target()
    assert schedule.rate_at(0) == pytest.approx(mbps_to_bytes_per_s(250))
    assert schedule.rate_at(150) == pytest.approx(mbps_to_bytes_per_s(0.5))
    assert schedule.rate_at(301) == pytest.approx(mbps_to_bytes_per_s(250))
    schedules = plan.schedules()
    assert set(schedules) == {2, 5}


def test_attack_traffic_is_link_minus_requirement():
    plan = majority_attack_plan()
    assert plan.attack_traffic_mbps(10.0) == pytest.approx(240.0)
    assert plan.attack_traffic_mbps(300.0) == 0.0
    with pytest.raises(Exception):
        plan.attack_traffic_mbps(-1)


def test_invalid_plans_rejected():
    with pytest.raises(Exception):
        DDoSAttackPlan(target_authority_ids=(), duration=300)
    with pytest.raises(Exception):
        DDoSAttackPlan(target_authority_ids=(0,), duration=0)
    with pytest.raises(Exception):
        DDoSAttackPlan(target_authority_ids=(0,), start=-5)


def test_majority_plan_for_other_sizes():
    assert majority_attack_plan(authority_count=5).target_count == 3
    assert majority_attack_plan(authority_count=7).target_count == 4


def test_total_flood_fault_plan_is_a_partition():
    plan = DDoSAttackPlan(
        target_authority_ids=(0, 1, 2), start=10.0, duration=290.0,
        residual_bandwidth_mbps=0.0,
    )
    faults = plan.fault_plan()
    assert faults.faulted_authority_ids() == (0, 1, 2)
    for authority_id in (0, 1, 2):
        fault = faults.link_fault_for(authority_id)
        assert fault.partition_windows == ((10.0, 300.0),)
        assert fault.drop_probability == 0.0


def test_partial_flood_fault_plan_derives_windowed_loss():
    plan = DDoSAttackPlan(
        target_authority_ids=(0,), start=100.0, duration=50.0,
        residual_bandwidth_mbps=25.0, baseline_bandwidth_mbps=250.0,
    )
    faults = plan.fault_plan()
    fault = faults.link_fault_for(0)
    assert fault.drop_probability == pytest.approx(0.9)
    assert fault.partition_windows == ()
    # Loss is confined to the attack window, like the bandwidth form.
    assert fault.loss_windows == ((100.0, 150.0),)
    assert fault.loss_probability_at(99.0) == 0.0
    assert fault.loss_probability_at(100.0) == pytest.approx(0.9)
    assert fault.loss_probability_at(150.0) == 0.0
    assert faults.last_fault_end() == 150.0
    # Explicit override wins.
    assert plan.fault_plan(drop_probability=0.5).link_fault_for(0).drop_probability == 0.5
    # A flood weaker than the link is a no-op plan.
    harmless = DDoSAttackPlan(
        target_authority_ids=(0,), residual_bandwidth_mbps=300.0,
        baseline_bandwidth_mbps=250.0,
    )
    assert harmless.fault_plan().is_empty


def test_fault_plan_attaches_to_a_spec_and_changes_its_hash():
    from repro.runtime.spec import RunSpec

    attack = majority_attack_plan()
    base = RunSpec(protocol="ours", relay_count=500)
    attacked = base.with_faults(attack.fault_plan())
    assert attacked.spec_hash() != base.spec_hash()
