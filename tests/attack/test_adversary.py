"""Adversary building-block tests (full protocol interaction is covered in core tests)."""

from repro.attack.adversary import (
    CrashingICPSAdversary,
    EquivocatingICPSAdversary,
    SilentICPSAdversary,
)
from repro.consensus.interfaces import SendAction
from repro.core import Document, ICPSConfig
from repro.crypto.keys import KeyPair, KeyRing

NODES = ("a0", "a1", "a2", "a3")
PAIRS = {name: KeyPair.generate(name, b"adv-seed") for name in NODES}
RING = KeyRing(PAIRS.values())


def test_silent_adversary_emits_nothing():
    adversary = SilentICPSAdversary("a0")
    assert adversary.start(Document.from_text("x")) == []
    assert adversary.on_message(object()) == []
    assert adversary.on_timeout("t") == []
    assert not adversary.decided


def test_equivocator_sends_conflicting_documents():
    adversary = EquivocatingICPSAdversary(
        "a0",
        peers=NODES,
        keypair=PAIRS["a0"],
        document_a=Document.from_text("A"),
        document_b=Document.from_text("B"),
    )
    actions = adversary.start(None)
    sends = [a for a in actions if isinstance(a, SendAction)]
    assert len(sends) == 3  # one per peer, none to itself
    digests = {send.message.payload["document"].digest() for send in sends}
    assert len(digests) == 2, "different peers must receive different documents"
    assert all(send.message.msg_type == "DOCUMENT" for send in sends)


def test_crashing_adversary_stops_after_budget():
    config = ICPSConfig(node_id="a0", nodes=NODES, delta=5.0)
    adversary = CrashingICPSAdversary(config, RING, PAIRS["a0"], crash_after_events=1)
    first = adversary.start(Document.from_text("doc"))
    assert first, "behaves honestly before the crash point"
    assert adversary.on_timeout("dissemination") == []
    assert adversary.on_message(object()) == []
    assert not adversary.decided
