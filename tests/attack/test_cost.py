"""Attack cost model tests (reproduces the paper's headline numbers)."""

import pytest

from repro.attack.cost import AttackCostModel, HOURS_PER_MONTH, JANSEN_COST_PER_MBPS_HOUR


def test_paper_headline_numbers():
    model = AttackCostModel()
    assert model.traffic_per_target_mbps == pytest.approx(240.0)
    assert model.cost_per_run() == pytest.approx(0.074, abs=1e-3)
    assert model.cost_per_month() == pytest.approx(53.28, abs=0.01)


def test_cost_per_day_consistency():
    model = AttackCostModel()
    assert model.cost_per_day() == pytest.approx(model.cost_per_run() * 24)
    assert model.cost_per_month() == pytest.approx(model.cost_per_run() * HOURS_PER_MONTH)


def test_estimate_breakdown():
    estimate = AttackCostModel().estimate()
    assert estimate.targets == 5
    assert estimate.runs_per_month == 720
    assert estimate.cost_per_month_usd == pytest.approx(53.28, abs=0.01)


def test_cost_scales_linearly_with_targets_and_duration():
    base = AttackCostModel()
    more_targets = AttackCostModel(targets=10)
    longer = AttackCostModel(attack_seconds_per_run=600.0)
    assert more_targets.cost_per_run() == pytest.approx(2 * base.cost_per_run())
    assert longer.cost_per_run() == pytest.approx(2 * base.cost_per_run())


def test_higher_protocol_requirement_lowers_attack_cost():
    # If the protocol needed more bandwidth, the attacker would need less
    # flood traffic to starve it.
    cheap = AttackCostModel(required_bandwidth_mbps=100.0)
    assert cheap.cost_per_month() < AttackCostModel().cost_per_month()


def test_jansen_rate_constant():
    assert JANSEN_COST_PER_MBPS_HOUR == pytest.approx(0.00074)


def test_invalid_models_rejected():
    with pytest.raises(Exception):
        AttackCostModel(targets=0)
    with pytest.raises(Exception):
        AttackCostModel(attack_seconds_per_run=0)
    with pytest.raises(Exception):
        AttackCostModel(authority_link_mbps=0)
