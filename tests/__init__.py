"""Test package."""
