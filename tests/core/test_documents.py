"""Document wrapper tests."""

import pytest

from repro.core.documents import Document


def test_from_text_and_size():
    document = Document.from_text("hello world", label="greeting")
    assert document.size_bytes == 11
    assert document.label == "greeting"


def test_digest_stability_and_sensitivity():
    assert Document.from_text("a").digest() == Document.from_text("a").digest()
    assert Document.from_text("a").digest() != Document.from_text("b").digest()


def test_size_override_changes_wire_size_not_digest():
    plain = Document(data=b"small content")
    padded = Document(data=b"small content", size_override=1_000_000)
    assert padded.size_bytes == 1_000_000
    assert plain.size_bytes == len(b"small content")
    assert padded.digest() == plain.digest()
    assert padded == plain  # size_override does not affect equality


def test_payload_excluded_from_equality():
    assert Document(data=b"x", payload={"decoded": 1}) == Document(data=b"x")


def test_data_must_be_bytes_and_override_non_negative():
    with pytest.raises(Exception):
        Document(data="not bytes")  # type: ignore[arg-type]
    with pytest.raises(Exception):
        Document(data=b"x", size_override=-1)
