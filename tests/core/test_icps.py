"""End-to-end ICPS tests on the local driver (good case and engine variants)."""

import pytest

from repro.consensus import LocalDriver
from repro.consensus.driver import gst_delivery
from repro.core import (
    Document,
    ICPSConfig,
    ICPSNode,
    check_agreement,
    check_common_set_validity,
    check_termination,
    check_value_validity,
)
from repro.core.icps import ICPSMessage
from repro.crypto.keys import KeyPair, KeyRing


def build_cluster(n=4, engine="hotstuff", delta=5.0, view_timeout=10.0):
    names = tuple("a%d" % index for index in range(n))
    pairs = {name: KeyPair.generate(name, b"icps-seed") for name in names}
    ring = KeyRing(pairs.values())
    nodes = {
        name: ICPSNode(
            ICPSConfig(
                node_id=name, nodes=names, delta=delta, engine=engine, view_timeout=view_timeout
            ),
            ring,
            pairs[name],
        )
        for name in names
    }
    docs = {name: Document.from_text("vote of %s" % name, label=name) for name in names}
    return names, pairs, ring, nodes, docs


def run_cluster(nodes, docs, delivery_policy=None, crashed=(), until=1000.0):
    driver = LocalDriver(nodes, delivery_policy=delivery_policy, crashed=crashed, loopback_broadcast=False)
    driver.start(docs)
    driver.run(until=until)
    return driver


class TestConfig:
    def test_fault_tolerance(self):
        names = tuple("a%d" % index for index in range(9))
        config = ICPSConfig(node_id="a0", nodes=names)
        assert config.n == 9 and config.f == 2

    def test_invalid_config(self):
        with pytest.raises(Exception):
            ICPSConfig(node_id="zzz", nodes=("a0", "a1"))
        with pytest.raises(Exception):
            ICPSConfig(node_id="a0", nodes=("a0",), delta=0)


class TestMessageSizes:
    def test_document_message_dominated_by_document(self):
        document = Document(data=b"x" * 100_000)
        message = ICPSMessage(msg_type="DOCUMENT", sender="a0", payload={"document": document, "signature": None})
        assert message.size_bytes > 100_000

    def test_fetch_response_sums_documents(self):
        docs = {"a0": Document(data=b"x" * 1000), "a1": Document(data=b"y" * 2000)}
        message = ICPSMessage(msg_type="FETCH_RESPONSE", sender="a2", payload=docs)
        assert message.size_bytes >= 3000

    def test_unknown_type_gets_base_size(self):
        assert ICPSMessage(msg_type="OTHER", sender="a0").size_bytes == 64


@pytest.mark.parametrize("engine", ["hotstuff", "pbft", "tendermint"])
def test_good_case_all_properties_hold(engine):
    names, _pairs, _ring, nodes, docs = build_cluster(engine=engine)
    run_cluster(nodes, docs)
    outputs = {name: nodes[name].output for name in names}
    assert check_termination(outputs, names)
    assert check_agreement(outputs, names)
    assert check_value_validity(outputs, docs, names, gst_zero=True)
    assert check_common_set_validity(outputs, names, n=len(names), f=1)
    # GST = 0 and no faults: every document is delivered.
    assert all(output.non_bottom_count == len(names) for output in outputs.values())


def test_nine_node_cluster_decides():
    names, _pairs, _ring, nodes, docs = build_cluster(n=9)
    run_cluster(nodes, docs)
    outputs = {name: nodes[name].output for name in names}
    assert check_termination(outputs, names)
    assert check_agreement(outputs, names)
    assert check_common_set_validity(outputs, names, n=9, f=2)


def test_outputs_expose_documents_and_views():
    names, _pairs, _ring, nodes, docs = build_cluster()
    run_cluster(nodes, docs)
    output = nodes["a1"].output
    assert output.document_of("a0").data == docs["a0"].data
    assert output.decided_view >= 0
    assert nodes["a1"].decision is output
    assert nodes["a1"].agreed_vector is not None


def test_gst_delay_still_terminates_with_all_correct():
    names, _pairs, _ring, nodes, docs = build_cluster(delta=5.0, view_timeout=5.0)
    run_cluster(nodes, docs, delivery_policy=gst_delivery(gst=30.0, latency=0.05), until=3000)
    outputs = {name: nodes[name].output for name in names}
    assert check_termination(outputs, names)
    assert check_agreement(outputs, names)
    assert check_common_set_validity(outputs, names, n=len(names), f=1)
    # Under a non-zero GST the weaker value-validity clause applies.
    assert check_value_validity(outputs, docs, names, gst_zero=False)


def test_node_cannot_start_twice():
    names, _pairs, _ring, nodes, docs = build_cluster()
    node = nodes["a0"]
    node.start(docs["a0"])
    with pytest.raises(Exception):
        node.start(docs["a0"])


def test_messages_before_start_are_ignored():
    names, _pairs, _ring, nodes, docs = build_cluster()
    node = nodes["a0"]
    assert node.on_message(ICPSMessage(msg_type="DOCUMENT", sender="a1", payload={})) == []
    assert node.on_timeout("dissemination") == []
