"""Dissemination tracker tests: document recording, proposals, (H, π) building."""

import pytest

from repro.core.documents import Document
from repro.core.dissemination import DisseminationTracker
from repro.core.proofs import sign_claim, validate_digest_vector
from repro.crypto.keys import KeyPair, KeyRing

NODES = ("a0", "a1", "a2", "a3")
F = 1


@pytest.fixture()
def env():
    pairs = {name: KeyPair.generate(name, b"diss-seed") for name in NODES}
    ring = KeyRing(pairs.values())
    docs = {name: Document.from_text("doc %s" % name, label=name) for name in NODES}
    trackers = {name: DisseminationTracker(name, NODES, F, ring, pairs[name]) for name in NODES}
    return pairs, ring, docs, trackers


def broadcast_documents(pairs, docs, trackers):
    signatures = {name: trackers[name].record_own_document(docs[name]) for name in NODES}
    for receiver in NODES:
        for sender in NODES:
            if sender != receiver:
                assert trackers[receiver].record_document(sender, docs[sender], signatures[sender])
    return signatures


def test_requires_n_at_least_3f_plus_1():
    pairs = {name: KeyPair.generate(name, b"x") for name in ("a", "b", "c")}
    ring = KeyRing(pairs.values())
    with pytest.raises(Exception):
        DisseminationTracker("a", ("a", "b", "c"), 1, ring, pairs["a"])


def test_document_counting_and_quorum(env):
    pairs, ring, docs, trackers = env
    tracker = trackers["a0"]
    tracker.record_own_document(docs["a0"])
    assert tracker.received_document_count == 1
    assert not tracker.has_quorum_of_documents()
    for sender in ("a1", "a2"):
        signature = sign_claim(pairs[sender], sender, docs[sender].digest())
        tracker.record_document(sender, docs[sender], signature)
    assert tracker.has_quorum_of_documents()     # 3 of 4 >= n - f
    assert not tracker.has_all_documents()


def test_invalid_signature_rejected(env):
    pairs, ring, docs, trackers = env
    tracker = trackers["a0"]
    wrong_signer = sign_claim(pairs["a2"], "a1", docs["a1"].digest())
    assert not tracker.record_document("a1", docs["a1"], wrong_signer)
    unknown = sign_claim(KeyPair.generate("mallory", b"z"), "a1", docs["a1"].digest())
    assert not tracker.record_document("a1", docs["a1"], unknown)
    assert tracker.document_of("a1") is None


def test_unknown_sender_rejected(env):
    pairs, ring, docs, trackers = env
    signature = sign_claim(pairs["a1"], "a1", docs["a1"].digest())
    assert not trackers["a0"].record_document("zz", docs["a1"], signature)


def test_conflicting_documents_detected_as_equivocation(env):
    pairs, ring, docs, trackers = env
    tracker = trackers["a0"]
    first = Document.from_text("version one")
    second = Document.from_text("version two")
    assert tracker.record_document("a1", first, sign_claim(pairs["a1"], "a1", first.digest()))
    assert not tracker.record_document("a1", second, sign_claim(pairs["a1"], "a1", second.digest()))
    proof = tracker.equivocation_proof("a1")
    assert proof is not None and proof.kind == "equivocation"


def test_proposal_reflects_received_documents(env):
    pairs, ring, docs, trackers = env
    tracker = trackers["a0"]
    tracker.record_own_document(docs["a0"])
    for sender in ("a1", "a2"):
        tracker.record_document(sender, docs[sender], sign_claim(pairs[sender], sender, docs[sender].digest()))
    proposal = tracker.make_proposal()
    assert proposal.non_bottom_count == 3
    assert proposal.entry_for("a3").is_bottom
    assert proposal.entry_for("a1").digest == docs["a1"].digest()


def test_full_exchange_builds_valid_vector(env):
    pairs, ring, docs, trackers = env
    broadcast_documents(pairs, docs, trackers)
    proposals = {name: trackers[name].make_proposal() for name in NODES}
    for receiver in NODES:
        for sender in NODES:
            assert trackers[receiver].record_proposal(proposals[sender])
    vector = trackers["a2"].try_build_digest_vector()
    assert vector is not None
    assert vector.non_bottom_count == 4
    assert validate_digest_vector(vector, ring, NODES, F)


def test_vector_not_ready_without_quorum_of_proposals(env):
    pairs, ring, docs, trackers = env
    broadcast_documents(pairs, docs, trackers)
    tracker = trackers["a0"]
    tracker.record_proposal(tracker.make_proposal())
    tracker.record_proposal(trackers["a1"].make_proposal())
    assert tracker.try_build_digest_vector() is None  # only 2 of the required 3


def test_vector_marks_silent_node_bottom(env):
    pairs, ring, docs, trackers = env
    # a3 never sends a document; the others exchange everything else.
    signatures = {name: trackers[name].record_own_document(docs[name]) for name in NODES if name != "a3"}
    active = [name for name in NODES if name != "a3"]
    for receiver in active:
        for sender in active:
            if sender != receiver:
                trackers[receiver].record_document(sender, docs[sender], signatures[sender])
    proposals = {name: trackers[name].make_proposal() for name in active}
    for receiver in active:
        for sender in active:
            assert trackers[receiver].record_proposal(proposals[sender])
    vector = trackers["a0"].try_build_digest_vector()
    assert vector is not None
    assert vector.digest_of("a3") is None
    assert vector.non_bottom_count == 3
    assert validate_digest_vector(vector, ring, NODES, F)
    # The bottom entry carries a timeout proof with f + 1 claims.
    proof = dict((name, proof) for name, _d, proof in vector.entries)["a3"]
    assert proof.kind == "timeout"
    assert len(proof.signatures) >= F + 1


def test_invalid_proposal_rejected(env):
    pairs, ring, docs, trackers = env
    broadcast_documents(pairs, docs, trackers)
    good = trackers["a1"].make_proposal()
    # A proposal claiming to be from a2 but signed by a1 must be rejected.
    from repro.core.proofs import ProposalMessage

    impostor = ProposalMessage(proposer="a2", entries=good.entries)
    assert not trackers["a0"].record_proposal(impostor)
