"""Tests for digest claims, proposals, and digest-vector validation."""

import pytest

from repro.core.documents import Document
from repro.core.dissemination import DisseminationTracker
from repro.core.proofs import (
    DigestVectorValue,
    EntryProof,
    ProposalEntry,
    ProposalMessage,
    sign_claim,
    validate_digest_vector,
    validate_proposal,
    verify_claim,
)
from repro.crypto.keys import KeyPair, KeyRing

NODES = ("a0", "a1", "a2", "a3")
F = 1


@pytest.fixture()
def pairs_and_ring():
    pairs = {name: KeyPair.generate(name, b"proof-seed") for name in NODES}
    return pairs, KeyRing(pairs.values())


def documents():
    return {name: Document.from_text("document of %s" % name, label=name) for name in NODES}


def full_proposal(proposer, pairs, docs, missing=()):
    """Build a proposal where ``missing`` subjects are reported as ⊥."""
    entries = []
    for subject in NODES:
        if subject in missing:
            entries.append(
                ProposalEntry(
                    subject=subject,
                    digest=None,
                    subject_signature=None,
                    proposer_signature=sign_claim(pairs[proposer], subject, None),
                )
            )
        else:
            digest = docs[subject].digest()
            entries.append(
                ProposalEntry(
                    subject=subject,
                    digest=digest,
                    subject_signature=sign_claim(pairs[subject], subject, digest),
                    proposer_signature=sign_claim(pairs[proposer], subject, digest),
                )
            )
    return ProposalMessage(proposer=proposer, entries=tuple(entries))


class TestClaims:
    def test_claim_round_trip(self, pairs_and_ring):
        pairs, ring = pairs_and_ring
        digest = b"d" * 32
        signature = sign_claim(pairs["a0"], "a1", digest)
        assert verify_claim(ring, signature, "a1", digest)
        assert not verify_claim(ring, signature, "a2", digest)
        assert not verify_claim(ring, signature, "a1", b"x" * 32)

    def test_bottom_claim(self, pairs_and_ring):
        pairs, ring = pairs_and_ring
        signature = sign_claim(pairs["a0"], "a1", None)
        assert verify_claim(ring, signature, "a1", None)
        assert not verify_claim(ring, signature, "a1", b"d" * 32)


class TestProposalValidation:
    def test_valid_full_proposal(self, pairs_and_ring):
        pairs, ring = pairs_and_ring
        proposal = full_proposal("a0", pairs, documents())
        assert validate_proposal(proposal, ring, NODES, F)
        assert proposal.non_bottom_count == 4

    def test_valid_proposal_with_one_bottom(self, pairs_and_ring):
        pairs, ring = pairs_and_ring
        proposal = full_proposal("a0", pairs, documents(), missing=("a3",))
        assert validate_proposal(proposal, ring, NODES, F)

    def test_too_many_bottoms_rejected(self, pairs_and_ring):
        pairs, ring = pairs_and_ring
        proposal = full_proposal("a0", pairs, documents(), missing=("a2", "a3"))
        assert not validate_proposal(proposal, ring, NODES, F)

    def test_wrong_subject_order_rejected(self, pairs_and_ring):
        pairs, ring = pairs_and_ring
        proposal = full_proposal("a0", pairs, documents())
        reordered = ProposalMessage(proposer="a0", entries=tuple(reversed(proposal.entries)))
        assert not validate_proposal(reordered, ring, NODES, F)

    def test_missing_subject_signature_rejected(self, pairs_and_ring):
        pairs, ring = pairs_and_ring
        docs = documents()
        proposal = full_proposal("a0", pairs, docs)
        broken_entries = list(proposal.entries)
        broken_entries[1] = ProposalEntry(
            subject=broken_entries[1].subject,
            digest=broken_entries[1].digest,
            subject_signature=None,
            proposer_signature=broken_entries[1].proposer_signature,
        )
        assert not validate_proposal(
            ProposalMessage(proposer="a0", entries=tuple(broken_entries)), ring, NODES, F
        )

    def test_forged_proposer_signature_rejected(self, pairs_and_ring):
        pairs, ring = pairs_and_ring
        docs = documents()
        proposal = full_proposal("a0", pairs, docs)
        forged_entries = list(proposal.entries)
        forged_entries[0] = ProposalEntry(
            subject="a0",
            digest=docs["a0"].digest(),
            subject_signature=sign_claim(pairs["a0"], "a0", docs["a0"].digest()),
            proposer_signature=sign_claim(pairs["a1"], "a0", docs["a0"].digest()),  # wrong signer
        )
        assert not validate_proposal(
            ProposalMessage(proposer="a0", entries=tuple(forged_entries)), ring, NODES, F
        )


def build_vector_via_trackers(pairs, ring, docs):
    """Drive dissemination trackers to produce a genuine (H, π)."""
    trackers = {
        name: DisseminationTracker(name, NODES, F, ring, pairs[name]) for name in NODES
    }
    signatures = {name: trackers[name].record_own_document(docs[name]) for name in NODES}
    for receiver in NODES:
        for sender in NODES:
            if sender != receiver:
                trackers[receiver].record_document(sender, docs[sender], signatures[sender])
    proposals = {name: trackers[name].make_proposal() for name in NODES}
    for receiver in NODES:
        for sender in NODES:
            trackers[receiver].record_proposal(proposals[sender])
    return trackers["a0"].try_build_digest_vector()


class TestDigestVectorValidation:
    def test_honestly_built_vector_is_valid(self, pairs_and_ring):
        pairs, ring = pairs_and_ring
        vector = build_vector_via_trackers(pairs, ring, documents())
        assert vector is not None
        assert vector.non_bottom_count == 4
        assert validate_digest_vector(vector, ring, NODES, F)
        assert vector.size_bytes > 0
        assert vector.canonical_encoding() == vector.canonical_encoding()

    def test_vector_with_too_few_entries_invalid(self, pairs_and_ring):
        pairs, ring = pairs_and_ring
        vector = build_vector_via_trackers(pairs, ring, documents())
        # Blank out two entries -> only 2 non-bottom < n - f = 3.
        doctored = DigestVectorValue(
            leader=vector.leader,
            entries=tuple(
                (name, None if name in ("a2", "a3") else digest, proof)
                for name, digest, proof in vector.entries
            ),
        )
        assert not validate_digest_vector(doctored, ring, NODES, F)

    def test_ok_entry_without_enough_claims_invalid(self, pairs_and_ring):
        pairs, ring = pairs_and_ring
        vector = build_vector_via_trackers(pairs, ring, documents())
        doctored_entries = []
        for name, digest, proof in vector.entries:
            if name == "a1":
                proof = EntryProof(kind="ok", signatures=proof.signatures[:1])
            doctored_entries.append((name, digest, proof))
        doctored = DigestVectorValue(leader=vector.leader, entries=tuple(doctored_entries))
        assert not validate_digest_vector(doctored, ring, NODES, F)

    def test_non_vector_rejected(self, pairs_and_ring):
        _pairs, ring = pairs_and_ring
        assert not validate_digest_vector("not a vector", ring, NODES, F)  # type: ignore[arg-type]

    def test_unknown_proof_kind_rejected(self):
        with pytest.raises(Exception):
            EntryProof(kind="mystery", signatures=())
