"""ICPS under Byzantine participants and adverse schedules (incl. property-based)."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.attack.adversary import (
    CrashingICPSAdversary,
    EquivocatingICPSAdversary,
    SilentICPSAdversary,
)
from repro.consensus import LocalDriver
from repro.consensus.driver import gst_delivery
from repro.core import (
    Document,
    ICPSConfig,
    ICPSNode,
    check_agreement,
    check_common_set_validity,
    check_termination,
    check_value_validity,
)
from repro.crypto.keys import KeyPair, KeyRing

NAMES9 = tuple("a%d" % index for index in range(9))


def build(n=4, engine="hotstuff", delta=5.0, view_timeout=8.0):
    names = tuple("a%d" % index for index in range(n))
    pairs = {name: KeyPair.generate(name, b"byz-seed") for name in names}
    ring = KeyRing(pairs.values())
    docs = {name: Document.from_text("vote of %s" % name, label=name) for name in names}
    configs = {
        name: ICPSConfig(node_id=name, nodes=names, delta=delta, engine=engine, view_timeout=view_timeout)
        for name in names
    }
    return names, pairs, ring, docs, configs


def honest_node(name, configs, ring, pairs):
    return ICPSNode(configs[name], ring, pairs[name])


def run(nodes, docs, delivery_policy=None, crashed=(), until=2000.0):
    driver = LocalDriver(nodes, delivery_policy=delivery_policy, crashed=crashed, loopback_broadcast=False)
    driver.start(docs)
    driver.run(until=until)
    return driver


def test_silent_adversary_marked_bottom_but_protocol_completes():
    names, pairs, ring, docs, configs = build(n=4)
    nodes = {name: honest_node(name, configs, ring, pairs) for name in names[:-1]}
    nodes["a3"] = SilentICPSAdversary("a3")
    run(nodes, docs)
    correct = names[:-1]
    outputs = {name: nodes[name].output for name in correct}
    assert check_termination(outputs, correct)
    assert check_agreement(outputs, correct)
    assert check_common_set_validity(outputs, correct, n=4, f=1)
    assert all(output.document_of("a3") is None for output in outputs.values())


def test_equivocating_adversary_detected_and_excluded_or_consistent():
    names, pairs, ring, docs, configs = build(n=4)
    nodes = {name: honest_node(name, configs, ring, pairs) for name in names[:-1]}
    nodes["a3"] = EquivocatingICPSAdversary(
        "a3",
        peers=names,
        keypair=pairs["a3"],
        document_a=Document.from_text("lie A", label="a3"),
        document_b=Document.from_text("lie B", label="a3"),
    )
    run(nodes, docs)
    correct = names[:-1]
    outputs = {name: nodes[name].output for name in correct}
    assert check_termination(outputs, correct)
    # Agreement is the crucial property: whatever the honest nodes output for
    # the equivocator, they output the SAME thing (⊥ or one of the two lies).
    assert check_agreement(outputs, correct)
    assert check_common_set_validity(outputs, correct, n=4, f=1)
    entries = {outputs[name].document_of("a3") for name in correct if outputs[name] is not None}
    datas = {entry.data for entry in entries if entry is not None}
    assert len(datas) <= 1


def test_crashing_adversary_does_not_block_termination():
    names, pairs, ring, docs, configs = build(n=4, view_timeout=5.0)
    nodes = {name: honest_node(name, configs, ring, pairs) for name in names[:-1]}
    nodes["a3"] = CrashingICPSAdversary(configs["a3"], ring, pairs["a3"], crash_after_events=2)
    run(nodes, docs)
    correct = names[:-1]
    outputs = {name: nodes[name].output for name in correct}
    assert check_termination(outputs, correct)
    assert check_agreement(outputs, correct)


def test_two_silent_adversaries_of_nine():
    names, pairs, ring, docs, configs = build(n=9, view_timeout=5.0)
    nodes = {name: honest_node(name, configs, ring, pairs) for name in names[:7]}
    nodes["a7"] = SilentICPSAdversary("a7")
    nodes["a8"] = SilentICPSAdversary("a8")
    run(nodes, docs)
    correct = names[:7]
    outputs = {name: nodes[name].output for name in correct}
    assert check_termination(outputs, correct)
    assert check_agreement(outputs, correct)
    assert check_common_set_validity(outputs, correct, n=9, f=2)
    assert check_value_validity(outputs, docs, correct, gst_zero=True)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    engine=st.sampled_from(["hotstuff", "pbft", "tendermint"]),
    faulty_index=st.integers(min_value=0, max_value=3),
    behaviour=st.sampled_from(["silent", "equivocate", "crash"]),
    gst=st.floats(min_value=0.0, max_value=25.0),
)
def test_properties_hold_for_random_fault_and_gst(engine, faulty_index, behaviour, gst):
    names, pairs, ring, docs, configs = build(n=4, engine=engine, view_timeout=6.0)
    faulty = names[faulty_index]
    nodes = {}
    for name in names:
        if name != faulty:
            nodes[name] = honest_node(name, configs, ring, pairs)
        elif behaviour == "silent":
            nodes[name] = SilentICPSAdversary(name)
        elif behaviour == "equivocate":
            nodes[name] = EquivocatingICPSAdversary(
                name,
                peers=names,
                keypair=pairs[name],
                document_a=Document.from_text("lie A", label=name),
                document_b=Document.from_text("lie B", label=name),
            )
        else:
            nodes[name] = CrashingICPSAdversary(configs[name], ring, pairs[name], crash_after_events=3)

    run(nodes, docs, delivery_policy=gst_delivery(gst=gst, latency=0.02), until=4000)
    correct = tuple(name for name in names if name != faulty)
    outputs = {name: nodes[name].output for name in correct}
    assert check_termination(outputs, correct)
    assert check_agreement(outputs, correct)
    assert check_common_set_validity(outputs, correct, n=4, f=1)
    assert check_value_validity(outputs, docs, correct, gst_zero=False)
