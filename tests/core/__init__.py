"""Test package."""
