"""Whole-system integration tests: the paper's story end to end.

These tests exercise the full stack — synthetic network generation, the
simulator, all three directory protocols, the attack model, and the
aggregation algorithm — and assert the paper's three headline claims:

1. the current protocol works in benign conditions,
2. five minutes of DDoS against five authorities breaks it (and the
   synchronous fix), and
3. the new partial-synchrony protocol survives the same attack and produces
   the same consensus the current protocol would have produced.
"""

import pytest

from repro.attack import AttackCostModel, majority_attack_plan
from repro.directory.aggregate import aggregate_votes
from repro.protocols import build_scenario, run_protocol
from repro.protocols.base import DirectoryProtocolConfig

CONFIG = DirectoryProtocolConfig()


@pytest.fixture(scope="module")
def benign_scenario():
    return build_scenario(relay_count=8000, bandwidth_mbps=250.0, seed=99)


@pytest.fixture(scope="module")
def attacked_scenario(benign_scenario):
    attack = majority_attack_plan()
    return benign_scenario.with_bandwidth_schedules(attack.schedules()), attack


def test_benign_conditions_all_protocols_agree_on_relay_content(benign_scenario):
    reference = aggregate_votes(list(benign_scenario.votes.values()))
    for protocol in ("current", "ours"):
        result = run_protocol(protocol, benign_scenario, config=CONFIG, max_time=1200)
        assert result.success
        # Every successful authority signed a consensus covering (almost) the
        # same relay set as the full-information aggregation.
        digests = {
            outcome.consensus_digest
            for outcome in result.outcomes.values()
            if outcome.success
        }
        assert len(digests) == 1
        assert reference.relay_count > 0


def test_headline_attack_story(attacked_scenario):
    scenario, attack = attacked_scenario
    # 1. The attack costs pocket money.
    cost = AttackCostModel(targets=attack.target_count, attack_seconds_per_run=attack.duration)
    assert cost.cost_per_month() < 60.0
    # 2. Five minutes of DDoS breaks the current and synchronous protocols.
    current = run_protocol("current", scenario, config=CONFIG, max_time=700)
    synchronous = run_protocol("synchronous", scenario, config=CONFIG, max_time=700)
    assert not current.success
    assert not synchronous.success
    # 3. The partial-synchrony protocol recovers right after the attack ends.
    ours = run_protocol("ours", scenario, config=CONFIG, max_time=attack.end + 900)
    assert ours.success
    recovery = ours.latency_from(attack.end)
    assert recovery is not None and recovery < 60.0


def test_attack_is_ineffective_against_ours_even_when_longer(benign_scenario):
    # Doubling the attack window only delays the new protocol, never kills it.
    attack = majority_attack_plan(duration=600.0, residual_bandwidth_mbps=0.25)
    scenario = benign_scenario.with_bandwidth_schedules(attack.schedules())
    ours = run_protocol("ours", scenario, config=CONFIG, max_time=attack.end + 1200)
    assert ours.success
    assert ours.latency_from(attack.end) < 120.0


def test_transfer_accounting_is_conserved(benign_scenario):
    result = run_protocol("current", benign_scenario, config=CONFIG, max_time=700)
    stats = result.stats
    assert stats.total_bytes_delivered <= stats.total_bytes_sent
    assert stats.messages_delivered <= stats.messages_sent
    assert stats.messages_timed_out == 0  # nothing should time out at 250 Mbit/s
