"""Test package."""
