"""Engine-specific behaviour: locking, view change carry-over, equivocation."""

import pytest

from repro.consensus import EngineConfig, LocalDriver
from repro.consensus.hotstuff import HotStuffEngine
from repro.consensus.pbft import PBFTEngine
from repro.consensus.tendermint import TendermintEngine
from repro.consensus.interfaces import (
    BroadcastAction,
    ConsensusMessage,
    SendAction,
    SetTimerAction,
)
from repro.consensus.values import NIL_DIGEST, value_digest

NODES = ("n0", "n1", "n2", "n3")


def config_for(name, **kwargs):
    return EngineConfig(node_id=name, nodes=NODES, base_timeout=5.0, **kwargs)


class TestEngineConfig:
    def test_fault_tolerance_thresholds(self):
        config = config_for("n0")
        assert config.n == 4 and config.f == 1 and config.quorum == 3
        nine = EngineConfig(node_id="a0", nodes=tuple("a%d" % i for i in range(9)))
        assert nine.f == 2 and nine.quorum == 7

    def test_leader_rotation_round_robin(self):
        config = config_for("n0")
        assert [config.leader_of(v) for v in range(5)] == ["n0", "n1", "n2", "n3", "n0"]

    def test_view_timeout_grows(self):
        config = config_for("n0")
        assert config.view_timeout(3) > config.view_timeout(0)

    def test_invalid_configs(self):
        with pytest.raises(Exception):
            EngineConfig(node_id="zzz", nodes=NODES)
        with pytest.raises(Exception):
            EngineConfig(node_id="n0", nodes=("n0", "n0"))


class TestHotStuff:
    def test_leader_proposes_on_start(self):
        engine = HotStuffEngine(config_for("n0"))
        actions = engine.start("value")
        proposes = [a for a in actions if isinstance(a, BroadcastAction)]
        assert len(proposes) == 1
        assert proposes[0].message.msg_type == "HS/PROPOSE"
        assert any(isinstance(a, SetTimerAction) for a in actions)

    def test_follower_does_not_propose(self):
        engine = HotStuffEngine(config_for("n1"))
        actions = engine.start("value")
        assert not any(isinstance(a, BroadcastAction) for a in actions)

    def test_replica_votes_only_once_per_view(self):
        engine = HotStuffEngine(config_for("n1"))
        engine.start("own")
        proposal = ConsensusMessage(
            msg_type="HS/PROPOSE",
            sender="n0",
            view=0,
            payload={"value": "v", "justify": engine.high_qc, "digest": value_digest("v")},
        )
        first = engine.on_message(proposal)
        second = engine.on_message(proposal)
        assert any(isinstance(a, SendAction) and a.message.msg_type == "HS/VOTE1" for a in first)
        assert second == []

    def test_proposal_from_non_leader_ignored(self):
        engine = HotStuffEngine(config_for("n1"))
        engine.start("own")
        bogus = ConsensusMessage(
            msg_type="HS/PROPOSE",
            sender="n2",  # not the leader of view 0
            view=0,
            payload={"value": "v", "justify": engine.high_qc, "digest": value_digest("v")},
        )
        assert engine.on_message(bogus) == []

    def test_locked_replica_rejects_conflicting_old_justification(self):
        engine = HotStuffEngine(config_for("n1"))
        engine.start("own")
        from repro.consensus.quorum import QuorumCertificate

        lock = QuorumCertificate(
            view=3, value_digest=value_digest("locked"), voters=frozenset({"n0", "n1", "n2"}),
            phase="prepare",
        )
        engine.locked_qc = lock
        engine.view = 4
        conflicting = ConsensusMessage(
            msg_type="HS/PROPOSE",
            sender=engine.config.leader_of(4),
            view=4,
            payload={
                "value": "different",
                "justify": engine.high_qc,  # genesis, older than the lock
                "digest": value_digest("different"),
            },
        )
        assert engine.on_message(conflicting) == []

    def test_timeout_advances_view_and_sends_new_view(self):
        engine = HotStuffEngine(config_for("n2"))
        engine.start("own")
        actions = engine.on_timeout("view-0")
        assert engine.view == 1
        sends = [a for a in actions if isinstance(a, SendAction)]
        assert sends and sends[0].to == "n1"  # leader of view 1
        assert sends[0].message.msg_type == "HS/NEW-VIEW"


class TestPBFT:
    def test_full_local_round_decides(self):
        engines = {name: PBFTEngine(config_for(name)) for name in NODES}
        driver = LocalDriver(engines)
        driver.start({name: "value-%s" % name for name in NODES})
        result = driver.run(until=100)
        assert result.all_agree() and len(result.decisions) == 4
        assert list(result.decisions.values())[0] == "value-n0"

    def test_prepared_value_carried_over_on_view_change(self):
        engine = PBFTEngine(config_for("n1"))
        engine.start("own")
        digest = value_digest("committed-value")
        engine.on_message(
            ConsensusMessage(
                msg_type="PBFT/PRE-PREPARE",
                sender="n0",
                view=0,
                payload={"value": "committed-value", "digest": digest},
            )
        )
        for sender in ("n0", "n2", "n3"):
            engine.on_message(
                ConsensusMessage(
                    msg_type="PBFT/PREPARE", sender=sender, view=0, payload={"digest": digest}
                )
            )
        assert engine.prepared is not None
        actions = engine.on_timeout("view-0")
        view_changes = [
            a
            for a in actions
            if isinstance(a, BroadcastAction) and a.message.msg_type == "PBFT/VIEW-CHANGE"
        ]
        assert view_changes
        assert view_changes[0].message.payload["prepared"].value == "committed-value"


class TestTendermint:
    def test_nil_prevote_for_invalid_proposal(self):
        def validator(value):
            return value == "good"
        engine = TendermintEngine(config_for("n1", validator=validator))
        engine.start("good")
        actions = engine.on_message(
            ConsensusMessage(
                msg_type="TM/PROPOSAL",
                sender="n0",
                view=0,
                payload={"value": "bad", "digest": value_digest("bad"), "valid_round": -1},
            )
        )
        prevotes = [a for a in actions if isinstance(a, BroadcastAction)]
        assert prevotes and prevotes[0].message.payload["digest"] == NIL_DIGEST

    def test_polka_locks_value(self):
        engine = TendermintEngine(config_for("n1"))
        engine.start("own")
        digest = value_digest("candidate")
        engine.on_message(
            ConsensusMessage(
                msg_type="TM/PROPOSAL",
                sender="n0",
                view=0,
                payload={"value": "candidate", "digest": digest, "valid_round": -1},
            )
        )
        for sender in ("n0", "n2", "n3"):
            engine.on_message(
                ConsensusMessage(
                    msg_type="TM/PREVOTE", sender=sender, view=0, payload={"digest": digest}
                )
            )
        assert engine.locked_value == "candidate"
        assert engine.locked_round == 0

    def test_locked_node_rejects_conflicting_proposal_in_next_round(self):
        engine = TendermintEngine(config_for("n0"))
        engine.start("own")
        engine.locked_value = "locked"
        engine.locked_round = 2
        engine.round = 3
        actions = engine.on_message(
            ConsensusMessage(
                msg_type="TM/PROPOSAL",
                sender="n3",  # leader of round 3
                view=3,
                payload={"value": "other", "digest": value_digest("other"), "valid_round": -1},
            )
        )
        prevotes = [a for a in actions if isinstance(a, BroadcastAction)]
        assert prevotes and prevotes[0].message.payload["digest"] == NIL_DIGEST
