"""Behavioural tests shared by all three consensus engines.

Each test is parameterised over HotStuff, PBFT, and Tendermint and checks the
core single-shot properties the ICPS agreement phase relies on: termination
and agreement in the good case, tolerance of a crashed minority, recovery
from a crashed leader through view change, agreement under network partition
healing (GST), and respect for the external-validity predicate.
"""

import pytest

from repro.consensus import ENGINE_REGISTRY, EngineConfig, LocalDriver, make_engine
from repro.consensus.driver import gst_delivery, partition_delivery

ENGINES = sorted(ENGINE_REGISTRY)


def build(engine_name, node_count=4, validator=None, base_timeout=5.0):
    nodes = tuple("n%d" % index for index in range(node_count))
    engines = {
        name: make_engine(
            engine_name,
            EngineConfig(node_id=name, nodes=nodes, base_timeout=base_timeout, validator=validator),
        )
        for name in nodes
    }
    return nodes, engines


def inputs_for(nodes):
    return {name: "value-from-%s" % name for name in nodes}


@pytest.mark.parametrize("engine_name", ENGINES)
def test_good_case_all_decide_and_agree(engine_name):
    nodes, engines = build(engine_name)
    driver = LocalDriver(engines)
    driver.start(inputs_for(nodes))
    result = driver.run(until=200)
    assert set(result.decisions) == set(nodes)
    assert result.all_agree()
    # With an honest first leader the decision is the leader's input.
    assert list(result.decisions.values())[0] == "value-from-n0"


@pytest.mark.parametrize("engine_name", ENGINES)
def test_nine_nodes_good_case(engine_name):
    nodes, engines = build(engine_name, node_count=9)
    driver = LocalDriver(engines)
    driver.start(inputs_for(nodes))
    result = driver.run(until=300)
    assert len(result.decisions) == 9
    assert result.all_agree()


@pytest.mark.parametrize("engine_name", ENGINES)
def test_tolerates_f_crashed_followers(engine_name):
    nodes, engines = build(engine_name, node_count=4)
    driver = LocalDriver(engines, crashed=("n3",))
    driver.start(inputs_for(nodes))
    result = driver.run(until=300)
    assert set(result.decisions) == {"n0", "n1", "n2"}
    assert result.all_agree()


@pytest.mark.parametrize("engine_name", ENGINES)
def test_crashed_leader_triggers_view_change(engine_name):
    nodes, engines = build(engine_name, node_count=4, base_timeout=2.0)
    driver = LocalDriver(engines, crashed=("n0",))  # n0 leads view 0
    driver.start(inputs_for(nodes))
    result = driver.run(until=600)
    assert set(result.decisions) == {"n1", "n2", "n3"}
    assert result.all_agree()
    # The decision must have happened in a later view.
    assert all(view >= 1 for view in result.decision_views.values())


@pytest.mark.parametrize("engine_name", ENGINES)
def test_decides_after_partition_heals(engine_name):
    nodes, engines = build(engine_name, node_count=4, base_timeout=3.0)
    policy = partition_delivery((("n0", "n1"), ("n2", "n3")), heal_time=20.0, latency=0.01)
    driver = LocalDriver(engines, delivery_policy=policy)
    driver.start(inputs_for(nodes))
    result = driver.run(until=2000)
    assert set(result.decisions) == set(nodes)
    assert result.all_agree()
    assert all(time >= 20.0 for time in result.decision_times.values())


@pytest.mark.parametrize("engine_name", ENGINES)
def test_decides_despite_gst_delay(engine_name):
    nodes, engines = build(engine_name, node_count=4, base_timeout=3.0)
    driver = LocalDriver(engines, delivery_policy=gst_delivery(gst=15.0, latency=0.01))
    driver.start(inputs_for(nodes))
    result = driver.run(until=2000)
    assert set(result.decisions) == set(nodes)
    assert result.all_agree()


@pytest.mark.parametrize("engine_name", ENGINES)
def test_external_validity_rejects_invalid_leader_value(engine_name):
    # The view-0 leader's input is invalid; agreement must settle on a valid
    # value from a later leader instead of the invalid one.
    def validator(value):
        return isinstance(value, str) and value.startswith("valid")
    nodes, engines = build(engine_name, node_count=4, validator=validator, base_timeout=2.0)
    driver = LocalDriver(engines)
    inputs = {name: "valid-%s" % name for name in nodes}
    inputs["n0"] = "INVALID"
    driver.start(inputs)
    result = driver.run(until=600)
    assert result.decisions, "someone must eventually decide"
    assert result.all_agree()
    for value in result.decisions.values():
        assert value.startswith("valid")


@pytest.mark.parametrize("engine_name", ENGINES)
def test_late_input_via_set_input(engine_name):
    # Engines start without input (as in ICPS, where (H, π) is only ready
    # after the dissemination phase) and receive it later.
    nodes, engines = build(engine_name, node_count=4, base_timeout=3.0)
    driver = LocalDriver(engines)
    driver.start({name: None for name in nodes})
    driver.run(until=1.0, stop_when_all_decided=False)
    for name in nodes:
        driver.set_input(name, "late-value-%s" % name)
    result = driver.run(until=600)
    assert set(result.decisions) == set(nodes)
    assert result.all_agree()


@pytest.mark.parametrize("engine_name", ENGINES)
def test_decision_is_stable_after_first_decision(engine_name):
    nodes, engines = build(engine_name)
    driver = LocalDriver(engines)
    driver.start(inputs_for(nodes))
    result = driver.run(until=200)
    first = dict(result.decisions)
    # Keep running: no engine may change its decision.
    result2 = driver.run(until=400, stop_when_all_decided=False)
    assert result2.decisions == first


@pytest.mark.parametrize("engine_name", ENGINES)
def test_good_case_rounds_metadata(engine_name):
    engine_cls = ENGINE_REGISTRY[engine_name]
    assert engine_cls.good_case_rounds >= 3
    if engine_name == "hotstuff":
        # The paper's round-complexity total (9) assumes a 5-round HotStuff.
        assert engine_cls.good_case_rounds == 5
