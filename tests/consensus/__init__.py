"""Test package."""
