"""Local driver and delivery-policy tests."""

import pytest

from repro.consensus import EngineConfig, LocalDriver, make_engine
from repro.consensus.driver import (
    gst_delivery,
    partition_delivery,
    synchronous_delivery,
)
from repro.consensus.interfaces import ConsensusMessage


def test_synchronous_delivery_constant_latency():
    policy = synchronous_delivery(latency=0.5)
    message = ConsensusMessage(msg_type="X", sender="a", view=0)
    assert policy("a", "b", message, 10.0) == 10.5


def test_gst_delivery_holds_back_early_messages():
    policy = gst_delivery(gst=100.0, latency=0.5)
    message = ConsensusMessage(msg_type="X", sender="a", view=0)
    assert policy("a", "b", message, 10.0) == 100.5
    assert policy("a", "b", message, 200.0) == 200.5


def test_partition_delivery_blocks_across_groups_until_heal():
    policy = partition_delivery((("a", "b"), ("c",)), heal_time=50.0, latency=0.1)
    message = ConsensusMessage(msg_type="X", sender="a", view=0)
    assert policy("a", "b", message, 1.0) == pytest.approx(1.1)
    assert policy("a", "c", message, 1.0) == pytest.approx(50.1)
    assert policy("a", "c", message, 60.0) == pytest.approx(60.1)


def test_driver_requires_engines():
    with pytest.raises(Exception):
        LocalDriver({})


def test_driver_counts_messages_and_collects_decision_times():
    nodes = tuple("n%d" % index for index in range(4))
    engines = {
        name: make_engine("pbft", EngineConfig(node_id=name, nodes=nodes)) for name in nodes
    }
    driver = LocalDriver(engines)
    driver.start({name: "v" for name in nodes})
    result = driver.run(until=100)
    assert result.messages_delivered > 0
    assert set(result.decision_times) == set(nodes)
    assert all(time >= 0 for time in result.decision_times.values())


def test_crashed_nodes_never_receive_or_act():
    nodes = tuple("n%d" % index for index in range(4))
    engines = {
        name: make_engine("hotstuff", EngineConfig(node_id=name, nodes=nodes)) for name in nodes
    }
    driver = LocalDriver(engines, crashed=("n2",))
    driver.start({name: "v" for name in nodes})
    result = driver.run(until=100)
    assert "n2" not in result.decisions
    assert not engines["n2"].decided


def test_all_agree_with_no_decisions_is_true():
    nodes = ("n0", "n1", "n2", "n3")
    engines = {
        name: make_engine("hotstuff", EngineConfig(node_id=name, nodes=nodes)) for name in nodes
    }
    driver = LocalDriver(engines)
    # No start: nothing happens.
    result = driver.run(until=1.0, stop_when_all_decided=False)
    assert result.decisions == {}
    assert result.all_agree()
