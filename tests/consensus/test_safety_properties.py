"""Property-based safety tests for the consensus engines.

Hypothesis draws random crash sets, partition layouts, heal times, and
latencies; under every sampled schedule the engines must preserve agreement
(no two correct nodes decide differently) — and, when the adversarial
schedule eventually heals, termination as well.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.consensus import ENGINE_REGISTRY, EngineConfig, LocalDriver, make_engine
from repro.consensus.driver import gst_delivery, partition_delivery

NODE_COUNT = 4
NODES = tuple("n%d" % index for index in range(NODE_COUNT))


def build_engines(engine_name, base_timeout=2.0):
    return {
        name: make_engine(
            engine_name, EngineConfig(node_id=name, nodes=NODES, base_timeout=base_timeout)
        )
        for name in NODES
    }


engine_names = st.sampled_from(sorted(ENGINE_REGISTRY))


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    engine_name=engine_names,
    crashed_index=st.one_of(st.none(), st.integers(min_value=0, max_value=NODE_COUNT - 1)),
    gst=st.floats(min_value=0.0, max_value=30.0),
    latency=st.floats(min_value=0.001, max_value=0.5),
)
def test_agreement_and_termination_under_gst_and_one_crash(
    engine_name, crashed_index, gst, latency
):
    crashed = () if crashed_index is None else (NODES[crashed_index],)
    engines = build_engines(engine_name)
    driver = LocalDriver(
        engines, delivery_policy=gst_delivery(gst=gst, latency=latency), crashed=crashed
    )
    driver.start({name: "input-%s" % name for name in NODES})
    result = driver.run(until=5000)

    correct = [name for name in NODES if name not in crashed]
    # Agreement among whoever decided.
    assert result.all_agree()
    # Termination: with at most f = 1 crash and a finite GST, everyone decides.
    assert set(result.decisions) == set(correct)
    # The decided value is one of the proposed inputs (no fabrication).
    decided_value = list(result.decisions.values())[0]
    assert decided_value in {"input-%s" % name for name in NODES}


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    engine_name=engine_names,
    split=st.integers(min_value=1, max_value=NODE_COUNT - 1),
    heal_time=st.floats(min_value=1.0, max_value=40.0),
)
def test_agreement_survives_partitions(engine_name, split, heal_time):
    groups = (NODES[:split], NODES[split:])
    engines = build_engines(engine_name)
    driver = LocalDriver(
        engines, delivery_policy=partition_delivery(groups, heal_time=heal_time, latency=0.01)
    )
    driver.start({name: "input-%s" % name for name in NODES})
    result = driver.run(until=5000)
    assert result.all_agree()
    assert set(result.decisions) == set(NODES)
