"""Quorum certificate and value digest tests."""

import pytest

from repro.consensus.quorum import GENESIS_QC, QuorumCertificate, quorum_size
from repro.consensus.values import NIL_DIGEST, value_digest


def test_quorum_size_for_nine_nodes():
    # n = 9 tolerates f = 2 under partial synchrony; quorum is 7.
    assert quorum_size(9) == 7
    assert quorum_size(4) == 3
    assert quorum_size(3, f=0) == 3


def test_quorum_size_rejects_too_many_faults():
    with pytest.raises(Exception):
        quorum_size(9, f=3)
    with pytest.raises(Exception):
        quorum_size(0)


def test_certificate_validity_by_voter_count():
    qc = QuorumCertificate(view=1, value_digest=b"x" * 32, voters=frozenset({"a", "b", "c"}))
    assert qc.is_valid(quorum=3)
    assert not qc.is_valid(quorum=4)


def test_genesis_certificate_is_older_than_everything():
    assert GENESIS_QC.view == -1
    assert not GENESIS_QC.is_valid(quorum=1)


def test_value_digest_stability_and_sensitivity():
    assert value_digest("hello") == value_digest("hello")
    assert value_digest("hello") != value_digest("world")
    assert value_digest(None) == NIL_DIGEST
    assert len(value_digest("x")) == 32


def test_value_digest_uses_canonical_encoding_when_available():
    class Canonical:
        def __init__(self, payload):
            self.payload = payload

        def canonical_encoding(self):
            return self.payload

    assert value_digest(Canonical(b"a")) == value_digest(Canonical(b"a"))
    assert value_digest(Canonical(b"a")) != value_digest(Canonical(b"b"))
