"""Authority topology tests."""

import pytest

from repro.directory.authority import make_authorities
from repro.netgen.topology_gen import generate_topology
from repro.utils.units import Bandwidth


@pytest.fixture(scope="module")
def topology():
    authorities, _ring = make_authorities(9, seed=4)
    return authorities, generate_topology(authorities, bandwidth_mbps=250.0, seed=4)


def test_latencies_symmetric_and_in_range(topology):
    authorities, topo = topology
    for a in authorities:
        for b in authorities:
            latency = topo.latency_between(a.authority_id, b.authority_id)
            assert latency == topo.latency_between(b.authority_id, a.authority_id)
            if a.authority_id == b.authority_id:
                assert latency == 0.0
            else:
                assert 0.02 <= latency <= 0.12


def test_bandwidth_lookup(topology):
    authorities, topo = topology
    assert topo.bandwidth_of(authorities[0].authority_id) == Bandwidth.from_mbps(250.0)


def test_with_uniform_bandwidth_returns_copy(topology):
    authorities, topo = topology
    slower = topo.with_uniform_bandwidth(10.0)
    assert slower.bandwidth_of(0).mbps == pytest.approx(10.0)
    assert topo.bandwidth_of(0).mbps == pytest.approx(250.0)
    assert slower.latency_between(0, 1) == topo.latency_between(0, 1)


def test_deterministic_in_seed():
    authorities, _ring = make_authorities(5, seed=9)
    a = generate_topology(authorities, seed=1)
    b = generate_topology(authorities, seed=1)
    c = generate_topology(authorities, seed=2)
    assert a.latency_seconds == b.latency_seconds
    assert a.latency_seconds != c.latency_seconds


def test_invalid_parameters_rejected():
    authorities, _ring = make_authorities(3)
    with pytest.raises(Exception):
        generate_topology(authorities, min_latency_s=0.2, max_latency_s=0.1)
    with pytest.raises(Exception):
        generate_topology([])
