"""Tor-Metrics relay-count series tests (Figure 6 input)."""

from datetime import date

import pytest

from repro.netgen.metrics import (
    FIGURE6_END,
    FIGURE6_START,
    TOR_METRICS_AVERAGE,
    RelayCountSeries,
    synthesize_relay_counts,
)


def test_average_matches_paper_value():
    series = synthesize_relay_counts()
    assert series.average == pytest.approx(TOR_METRICS_AVERAGE, rel=1e-9)


def test_span_covers_figure6_window():
    series = synthesize_relay_counts()
    assert series.dates[0] == FIGURE6_START
    assert series.dates[-1] == FIGURE6_END
    assert len(series.dates) == (FIGURE6_END - FIGURE6_START).days + 1


def test_counts_are_plausible_relay_numbers():
    series = synthesize_relay_counts()
    assert 5000 < series.minimum < series.maximum < 10000


def test_deterministic_in_seed():
    a = synthesize_relay_counts(seed=1)
    b = synthesize_relay_counts(seed=1)
    c = synthesize_relay_counts(seed=2)
    assert a.counts == b.counts
    assert a.counts != c.counts


def test_monthly_averages_cover_every_month():
    series = synthesize_relay_counts()
    months = series.monthly_averages()
    assert months[0][0] == "2022-09"
    assert months[-1][0] == "2024-10"
    assert len(months) == 26


def test_custom_window_and_average():
    series = synthesize_relay_counts(
        start=date(2023, 1, 1), end=date(2023, 3, 1), target_average=5000.0
    )
    assert series.average == pytest.approx(5000.0)


def test_invalid_window_rejected():
    with pytest.raises(Exception):
        synthesize_relay_counts(start=date(2024, 1, 1), end=date(2023, 1, 1))


def test_series_requires_matching_lengths():
    with pytest.raises(Exception):
        RelayCountSeries(dates=(date(2023, 1, 1),), counts=(1.0, 2.0))
