"""Relay population generator tests."""

import pytest

from repro.directory.relay import RelayFlag
from repro.netgen.relaygen import RelayPopulationConfig, generate_population
from repro.utils.validation import ValidationError


def test_population_size_and_uniqueness():
    population = generate_population(RelayPopulationConfig(relay_count=200, seed=1))
    assert population.relay_count == 200
    fingerprints = {relay.fingerprint for relay in population.relays}
    assert len(fingerprints) == 200


def test_generation_is_deterministic():
    a = generate_population(RelayPopulationConfig(relay_count=50, seed=5))
    b = generate_population(RelayPopulationConfig(relay_count=50, seed=5))
    assert [r.fingerprint for r in a.relays] == [r.fingerprint for r in b.relays]
    c = generate_population(RelayPopulationConfig(relay_count=50, seed=6))
    assert [r.fingerprint for r in a.relays] != [r.fingerprint for r in c.relays]


def test_attribute_fractions_roughly_respected():
    config = RelayPopulationConfig(relay_count=600, exit_fraction=0.2, seed=2)
    population = generate_population(config)
    exits = sum(1 for relay in population.relays if RelayFlag.EXIT in relay.flags)
    assert 0.1 <= exits / 600 <= 0.3
    running = sum(1 for relay in population.relays if RelayFlag.RUNNING in relay.flags)
    assert running / 600 > 0.9


def test_bandwidths_are_positive_and_spread():
    population = generate_population(RelayPopulationConfig(relay_count=300, seed=3))
    bandwidths = [relay.bandwidth for relay in population.relays]
    assert min(bandwidths) >= 20
    assert max(bandwidths) > 10 * min(bandwidths), "log-normal spread expected"


def test_average_entry_bytes_in_calibrated_range():
    population = generate_population(RelayPopulationConfig(relay_count=100, seed=4))
    assert 280 <= population.average_entry_bytes() <= 550


def test_empty_population_allowed():
    population = generate_population(RelayPopulationConfig(relay_count=0))
    assert population.relay_count == 0
    assert population.average_entry_bytes() == 0.0


def test_invalid_fractions_rejected():
    with pytest.raises(ValidationError):
        RelayPopulationConfig(exit_fraction=1.5)
    with pytest.raises(ValidationError):
        RelayPopulationConfig(relay_count=-1)
