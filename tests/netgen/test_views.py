"""Authority-view (vote generation) tests."""

import pytest

from repro.directory.authority import make_authorities
from repro.netgen.relaygen import RelayPopulationConfig, generate_population
from repro.netgen.views import AuthorityViewConfig, generate_authority_votes
from repro.utils.validation import ValidationError


@pytest.fixture(scope="module")
def setup():
    authorities, ring = make_authorities(9, seed=2)
    population = generate_population(RelayPopulationConfig(relay_count=80, seed=2))
    votes = generate_authority_votes(population, authorities, AuthorityViewConfig(seed=2))
    return authorities, population, votes


def test_one_vote_per_authority(setup):
    authorities, _population, votes = setup
    assert set(votes) == {auth.authority_id for auth in authorities}
    for auth in authorities:
        assert votes[auth.authority_id].authority_fingerprint == auth.fingerprint


def test_views_disagree_slightly_but_not_wildly(setup):
    _authorities, population, votes = setup
    counts = [vote.relay_count for vote in votes.values()]
    assert max(counts) <= population.relay_count
    assert min(counts) >= int(population.relay_count * 0.9)
    digests = {vote.digest_hex() for vote in votes.values()}
    assert len(digests) == len(votes), "authorities should not have identical votes"


def test_only_bandwidth_authorities_measure(setup):
    authorities, _population, votes = setup
    for auth in authorities:
        vote = votes[auth.authority_id]
        measured = any(relay.measured for relay in vote.relays.values())
        assert measured == auth.is_bandwidth_authority


def test_generation_deterministic(setup):
    authorities, population, votes = setup
    again = generate_authority_votes(population, authorities, AuthorityViewConfig(seed=2))
    assert {k: v.digest_hex() for k, v in votes.items()} == {
        k: v.digest_hex() for k, v in again.items()
    }


def test_padded_relay_count_propagates():
    authorities, _ring = make_authorities(3, seed=3)
    population = generate_population(RelayPopulationConfig(relay_count=20, seed=3))
    votes = generate_authority_votes(
        population, authorities, padded_relay_count=2000
    )
    assert votes[0].size_bytes > 50 * votes[0].relay_count


def test_invalid_config_rejected():
    with pytest.raises(ValidationError):
        AuthorityViewConfig(miss_probability=2.0)
    with pytest.raises(ValidationError):
        AuthorityViewConfig(measurement_noise=-1.0)
    with pytest.raises(ValidationError):
        generate_authority_votes(
            generate_population(RelayPopulationConfig(relay_count=1)), []
        )
