"""Test package."""
