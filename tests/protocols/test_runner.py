"""Scenario builder and protocol runner tests."""

import pytest

from repro.protocols.runner import PROTOCOL_NAMES, build_scenario, run_protocol
from repro.simnet.bandwidth import BandwidthSchedule
from repro.utils.validation import ValidationError


def test_build_scenario_structure():
    scenario = build_scenario(relay_count=3000, bandwidth_mbps=50.0, seed=1)
    assert len(scenario.authorities) == 9
    assert set(scenario.votes) == {auth.authority_id for auth in scenario.authorities}
    assert scenario.relay_count == 3000
    # Votes are padded to the requested relay count even though fewer relays
    # are materialised.
    assert scenario.votes[0].relay_count <= 120
    assert scenario.votes[0].size_bytes > 800_000


def test_build_scenario_validation():
    with pytest.raises(Exception):
        build_scenario(relay_count=0)
    with pytest.raises(Exception):
        build_scenario(relay_count=100, bandwidth_mbps=0)


def test_with_bandwidth_schedules_merges_without_mutating():
    scenario = build_scenario(relay_count=1000, bandwidth_mbps=100.0, seed=1)
    override = {0: BandwidthSchedule.constant_mbps(1.0)}
    patched = scenario.with_bandwidth_schedules(override)
    assert patched.bandwidth_schedules[0].rate_at(0) < scenario.bandwidth_schedules[0].rate_at(0)
    assert patched.bandwidth_schedules[1] is scenario.bandwidth_schedules[1]
    assert scenario.bandwidth_schedules[0].rate_at(0) > 1e6


def test_unknown_protocol_rejected():
    scenario = build_scenario(relay_count=1000, seed=1)
    with pytest.raises(ValidationError):
        run_protocol("carrier-pigeon", scenario)


def test_protocol_names_constant():
    assert set(PROTOCOL_NAMES) == {"current", "synchronous", "ours"}


@pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
def test_all_protocols_succeed_at_live_bandwidth(protocol):
    scenario = build_scenario(relay_count=2000, bandwidth_mbps=250.0, seed=2)
    result = run_protocol(protocol, scenario, max_time=1200.0)
    assert result.success
    assert result.latency is not None and result.latency > 0
    assert len(result.successful_authorities) >= 5
    # All successful authorities agreed on the same consensus digest.
    digests = {
        outcome.consensus_digest
        for outcome in result.outcomes.values()
        if outcome.success and outcome.consensus_digest
    }
    assert len(digests) == 1


def test_result_latency_from_reference_time():
    scenario = build_scenario(relay_count=1000, bandwidth_mbps=250.0, seed=3)
    result = run_protocol("ours", scenario, max_time=1200.0)
    assert result.success
    shifted = result.latency_from(0.0)
    assert shifted == pytest.approx(
        sum(
            outcome.completion_time
            for outcome in result.outcomes.values()
            if outcome.success
        )
        / len(result.successful_authorities)
    )


def test_stats_and_trace_populated():
    scenario = build_scenario(relay_count=1000, bandwidth_mbps=250.0, seed=4)
    result = run_protocol("current", scenario, max_time=1200.0)
    assert result.stats.total_bytes_delivered > 0
    assert result.stats.bytes_by_type.get("V3/VOTE", 0) > 0
    assert len(result.trace) > 0
