"""Current (v3) directory protocol behaviour tests."""


from repro.attack.ddos import DDoSAttackPlan
from repro.protocols.base import DirectoryProtocolConfig
from repro.protocols.runner import build_scenario, run_protocol


CONFIG = DirectoryProtocolConfig()


def run_current(scenario, config=CONFIG):
    return run_protocol("current", scenario, config=config, max_time=4 * config.round_duration + 60)


def test_success_and_latency_at_high_bandwidth():
    scenario = build_scenario(relay_count=4000, bandwidth_mbps=100.0, seed=11)
    result = run_current(scenario)
    assert result.success
    assert len(result.successful_authorities) == 9
    # Network-time latency: well under one lock-step round at 100 Mbit/s.
    assert result.latency < CONFIG.round_duration


def test_latency_grows_with_relay_count():
    small = run_current(build_scenario(relay_count=1000, bandwidth_mbps=20.0, seed=11))
    large = run_current(build_scenario(relay_count=8000, bandwidth_mbps=20.0, seed=11))
    assert small.success and large.success
    assert large.latency > small.latency


def test_fails_at_ddos_residual_bandwidth():
    scenario = build_scenario(relay_count=8000, bandwidth_mbps=0.5, seed=11)
    result = run_current(scenario)
    assert not result.success
    assert result.latency is None


def test_attack_on_majority_breaks_protocol_but_minority_does_not():
    base = build_scenario(relay_count=8000, bandwidth_mbps=250.0, seed=12)
    majority_attack = DDoSAttackPlan(
        target_authority_ids=(0, 1, 2, 3, 4), start=0.0, duration=300.0
    )
    minority_attack = DDoSAttackPlan(
        target_authority_ids=(0, 1, 2, 3), start=0.0, duration=300.0
    )
    attacked_majority = base.with_bandwidth_schedules(majority_attack.schedules())
    attacked_minority = base.with_bandwidth_schedules(minority_attack.schedules())
    assert not run_current(attacked_majority).success
    assert run_current(attacked_minority).success


def test_attack_outside_vote_rounds_is_harmless():
    # The same 300-second attack starting after the two vote rounds does not
    # prevent consensus (signatures are tiny messages).
    base = build_scenario(relay_count=4000, bandwidth_mbps=250.0, seed=13)
    late_attack = DDoSAttackPlan(
        target_authority_ids=(0, 1, 2, 3, 4), start=310.0, duration=300.0,
        residual_bandwidth_mbps=0.5,
    )
    result = run_current(base.with_bandwidth_schedules(late_attack.schedules()))
    assert result.success


def test_figure1_log_lines_present_under_attack():
    base = build_scenario(relay_count=8000, bandwidth_mbps=250.0, seed=14)
    attack = DDoSAttackPlan(target_authority_ids=(0, 1, 2, 3, 4), start=0.0, duration=300.0)
    result = run_current(base.with_bandwidth_schedules(attack.schedules()))
    assert not result.success
    observer = "auth-8"  # not attacked
    trace = result.trace
    assert trace.contains("Time to fetch any votes that we're missing.", node=observer)
    assert trace.contains("We're missing votes from 5 authorities", node=observer)
    assert trace.contains("Giving up downloading votes", node=observer)
    assert trace.contains("We don't have enough votes to generate a consensus: 4 of 5", node=observer)


def test_outcomes_record_votes_and_failure_reasons():
    scenario = build_scenario(relay_count=8000, bandwidth_mbps=0.5, seed=15)
    result = run_current(scenario)
    for outcome in result.outcomes.values():
        assert not outcome.success
        assert outcome.failure_reason is not None
        assert outcome.votes_held <= 9
