"""Synchronous (Luo et al.) protocol behaviour tests."""


from repro.protocols.base import DirectoryProtocolConfig
from repro.protocols.runner import build_scenario, run_protocol

CONFIG = DirectoryProtocolConfig()


def run_sync(scenario, config=CONFIG):
    return run_protocol(
        "synchronous", scenario, config=config, max_time=4 * config.round_duration + 60
    )


def test_succeeds_at_high_bandwidth_with_higher_latency_than_current():
    scenario = build_scenario(relay_count=2000, bandwidth_mbps=100.0, seed=21)
    sync_result = run_sync(scenario)
    current_result = run_protocol("current", scenario, config=CONFIG, max_time=700)
    assert sync_result.success and current_result.success
    # Packing every list into the vote makes the synchronous protocol slower.
    assert sync_result.latency > current_result.latency


def test_uses_much_more_bandwidth_than_current():
    scenario = build_scenario(relay_count=2000, bandwidth_mbps=100.0, seed=21)
    sync_result = run_sync(scenario)
    current_result = run_protocol("current", scenario, config=CONFIG, max_time=700)
    assert (
        sync_result.stats.total_bytes_delivered
        > 3 * current_result.stats.total_bytes_delivered
    )


def test_fails_at_lower_relay_count_than_current():
    # At 10 Mbit/s the synchronous protocol collapses around 2,000+ relays
    # while the current protocol still works (Figure 10's key ordering).
    scenario = build_scenario(relay_count=4000, bandwidth_mbps=10.0, seed=22)
    assert not run_sync(scenario).success
    assert run_protocol("current", scenario, config=CONFIG, max_time=700).success


def test_fails_under_ddos_residual_bandwidth():
    scenario = build_scenario(relay_count=1000, bandwidth_mbps=0.5, seed=23)
    assert not run_sync(scenario).success


def test_successful_run_agrees_on_single_digest():
    scenario = build_scenario(relay_count=1000, bandwidth_mbps=100.0, seed=24)
    result = run_sync(scenario)
    assert result.success
    digests = {
        outcome.consensus_digest for outcome in result.outcomes.values() if outcome.success
    }
    assert len(digests) == 1
