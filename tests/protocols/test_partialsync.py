"""Partial-synchrony (ICPS) directory protocol behaviour tests."""

import pytest

from repro.attack.ddos import DDoSAttackPlan
from repro.protocols.base import DirectoryProtocolConfig
from repro.protocols.runner import build_scenario, run_protocol

CONFIG = DirectoryProtocolConfig()


def run_ours(scenario, max_time=1800.0, **kwargs):
    return run_protocol("ours", scenario, config=CONFIG, max_time=max_time, **kwargs)


def test_succeeds_and_is_close_to_current_at_high_bandwidth():
    scenario = build_scenario(relay_count=8000, bandwidth_mbps=50.0, seed=31)
    ours = run_ours(scenario)
    current = run_protocol("current", scenario, config=CONFIG, max_time=700)
    assert ours.success and current.success
    # "Comparable performance": within a handful of seconds of the current protocol.
    assert ours.latency - current.latency < 15.0


def test_succeeds_where_current_fails_low_bandwidth():
    scenario = build_scenario(relay_count=8000, bandwidth_mbps=1.0, seed=32)
    assert not run_protocol("current", scenario, config=CONFIG, max_time=700).success
    result = run_ours(scenario, max_time=3000)
    assert result.success
    assert result.latency < 1000.0  # Figure 10's bottom panels stay under ~1000 s


def test_succeeds_at_ddos_residual_bandwidth():
    scenario = build_scenario(relay_count=4000, bandwidth_mbps=0.5, seed=33)
    result = run_ours(scenario, max_time=4000)
    assert result.success


def test_recovers_quickly_after_full_ddos_window():
    scenario = build_scenario(relay_count=8000, bandwidth_mbps=250.0, seed=34)
    attack = DDoSAttackPlan(
        target_authority_ids=(0, 1, 2, 3, 4),
        start=0.0,
        duration=300.0,
        residual_bandwidth_mbps=0.05,
    )
    attacked = scenario.with_bandwidth_schedules(attack.schedules())
    result = run_ours(attacked, max_time=attack.end + 900)
    assert result.success
    recovery = result.latency_from(attack.end)
    assert recovery is not None
    assert recovery < 60.0, "consensus should appear within seconds of the attack ending"


def test_all_authorities_agree_on_consensus_digest():
    scenario = build_scenario(relay_count=2000, bandwidth_mbps=20.0, seed=35)
    result = run_ours(scenario)
    assert result.success
    digests = {
        outcome.consensus_digest for outcome in result.outcomes.values() if outcome.success
    }
    assert len(digests) == 1
    assert all(outcome.votes_held >= 7 for outcome in result.outcomes.values() if outcome.success)


@pytest.mark.parametrize("engine", ["pbft", "tendermint"])
def test_alternative_agreement_engines_work(engine):
    scenario = build_scenario(relay_count=2000, bandwidth_mbps=20.0, seed=36)
    result = run_ours(scenario, engine=engine)
    assert result.success
