"""Test package."""
