"""Test package."""
