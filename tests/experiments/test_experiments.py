"""Experiment-module tests: every paper artefact regenerates with the right shape."""

import pytest

from repro.experiments import (
    render_cost_analysis,
    render_figure6,
    render_figure7,
    render_figure10,
    render_figure11,
    render_table1,
    render_table2,
    run_attack_demo,
    run_cost_analysis,
    run_figure6,
    run_figure7,
    run_figure10,
    run_figure11,
    run_table1,
    run_table2,
)
from repro.experiments.ablations import render_ablation, run_engine_ablation, run_scheduling_ablation


def test_figure1_attack_demo_breaks_consensus_and_logs_like_the_paper():
    demo = run_attack_demo(relay_count=8000)
    assert demo.attack_succeeded
    assert demo.attack.target_count == 5
    assert demo.attack.duration == 300.0
    assert "We're missing votes from 5 authorities" in demo.log_text
    assert "Giving up downloading votes" in demo.log_text
    assert "We don't have enough votes to generate a consensus" in demo.log_text


def test_figure6_series_and_rendering():
    series = run_figure6()
    assert series.average == pytest.approx(7141.79, abs=0.01)
    text = render_figure6(series)
    assert "7141.79" in text
    assert "2024-10" in text


def test_figure7_sweep_shape():
    results = run_figure7(relay_counts=(2000, 8000))
    assert len(results) == 2
    assert results[1].required_mbps > results[0].required_mbps
    assert 6.0 <= results[1].required_mbps <= 16.0
    text = render_figure7(results)
    assert "Relays" in text and "Required bandwidth" in text


def test_cost_analysis_headline():
    estimate = run_cost_analysis()
    assert estimate.cost_per_month_usd == pytest.approx(53.28, abs=0.01)
    text = render_cost_analysis(estimate)
    assert "$53.28" in text and "$0.074" in text


def test_figure10_small_grid_and_rendering():
    grid = run_figure10(bandwidths_mbps=(10.0,), relay_counts=(1000, 8000))
    text = render_figure10(grid)
    assert "Figure 10 panel: 10.0 Mbit/s" in text
    assert "FAIL" in text  # current/synchronous fail at 8,000 relays
    ours = [cell for cell in grid.cells if cell.protocol == "ours"]
    assert all(cell.success for cell in ours)


def test_figure11_recovery_and_rendering():
    results = run_figure11(relay_counts=(4000,), include_baselines=True)
    result = results[0]
    assert result.ours_success
    assert result.ours_latency_after_attack < 60.0
    assert not result.current_success
    assert not result.synchronous_success
    text = render_figure11(results)
    assert "2100 s fallback" in text


def test_table1_rows_and_rendering():
    rows = run_table1(relay_count=1000, measure=True)
    measured = {row.protocol: row.measured_bytes for row in rows}
    assert measured["Synchronous (Luo et al.)"] > 3 * measured["Current"]
    assert measured["Ours (Partial Synchrony)"] < measured["Synchronous (Luo et al.)"]
    text = render_table1(rows)
    assert "Partial Synchrony" in text and "O(n^3 d + n^4 k)" in text


def test_table2_rendering():
    rows = run_table2()
    text = render_table2(rows)
    assert "Dissemination" in text and "Total" in text and "9" in text


def test_scheduling_ablation_is_robust():
    cells = run_scheduling_ablation(relay_count=2000, bandwidth_mbps=20.0)
    by_variant = {}
    for cell in cells:
        by_variant.setdefault(cell.variant, {})[cell.protocol] = cell
    # The qualitative outcome must not depend on the transport link model.
    for variant, per_protocol in by_variant.items():
        assert per_protocol["current"].success
        assert per_protocol["ours"].success
    text = render_ablation(cells, "transport ablation")
    assert "transport=fair" in text and "transport=fifo" in text


def test_engine_ablation_all_engines_succeed():
    cells = run_engine_ablation(relay_count=2000, bandwidth_mbps=20.0)
    assert len(cells) == 3
    assert all(cell.success for cell in cells)
    latencies = [cell.latency_s for cell in cells]
    assert max(latencies) - min(latencies) < 30.0
