"""Scaling-sweep experiment tests (small N; the 10× point runs in benchmarks)."""

import json

from repro.experiments.scaling_sweep import (
    ScalingCell,
    engine_speedup_at,
    engine_speedups,
    parallel_speedup_at,
    parallel_speedups,
    render_scaling,
    run_scaling_sweep,
    scaling_specs,
    speedup_at,
    tcp_vector_speedups,
    vector_speedup_at,
    vector_speedups,
    write_bench_json,
)
from repro.simnet.vector_sched import vector_available


def synthetic_cells():
    def cell(transport, authority_count, wall, engine="lazy"):
        return ScalingCell(
            protocol="current",
            transport=transport,
            authority_count=authority_count,
            relay_count=200,
            success=True,
            wall_clock_s=wall,
            virtual_end_s=600.0,
            messages_sent=100,
            engine=engine,
        )

    return [
        cell("fair", 9, 0.2),
        cell("latency-only", 9, 0.1),
        cell("fair", 90, 10.0),
        cell("fair", 90, 40.0, engine="legacy"),
        cell("fair", 90, 2.5, engine="vector"),
        cell("fair", 90, 1.25, engine="parallel"),
        cell("latency-only", 90, 5.0),
        cell("tcp", 90, 8.0),
        cell("tcp", 90, 4.0, engine="vector"),
    ]


def test_scaling_specs_carry_the_transport_and_authority_grid():
    specs = scaling_specs(authority_counts=(5, 10), transports=("fair", "latency-only"))
    assert len(specs) == 4
    assert {spec.transport for spec in specs} == {"fair", "latency-only"}
    assert {spec.authority_count for spec in specs} == {5, 10}
    # Transport joins the spec hash: same grid point, different cache cells.
    fair, latency_only = specs[0], specs[1]
    assert fair.authority_count == latency_only.authority_count
    assert fair.spec_hash() != latency_only.spec_hash()


def test_small_scaling_sweep_runs_and_reports(tmp_path):
    cells = run_scaling_sweep(
        authority_counts=(5,),
        relay_count=30,
        max_time=600.0,
        legacy_fair_counts=(5,),
        parallel_fair_counts=(5,),
        tcp_counts=(5,),
    )
    # fair on every available engine, latency-only on the lazy engine
    # only, tcp on lazy and (numpy present) vector.  Numpy-less installs
    # skip (not downgrade) the vector and parallel cells.
    expected = [("fair", "lazy"), ("fair", "legacy")]
    if vector_available():
        expected.append(("fair", "vector"))
        expected.append(("fair", "parallel"))
    expected.append(("latency-only", "lazy"))
    expected.append(("tcp", "lazy"))
    if vector_available():
        expected.append(("tcp", "vector"))
    assert [(cell.transport, cell.engine) for cell in cells] == expected
    assert all(cell.success for cell in cells)
    assert all(cell.wall_clock_s > 0 for cell in cells)
    # Identical protocol work under every loss-free transport and engine
    # (tcp is excluded: its engines make no cross-engine trajectory claim,
    # and loss draws can change the message count).
    assert len({c.messages_sent for c in cells if c.transport != "tcp"}) == 1

    text = render_scaling(cells)
    assert "latency-only" in text and "fair" in text and "legacy" in text

    out = write_bench_json(cells, tmp_path / "BENCH_scaling.json")
    payload = json.loads(out.read_text())
    assert payload["format"] == 6
    assert len(payload["cells"]) == (7 if vector_available() else 4)
    assert "current@5" in payload["speedup_fair_to_latency_only"]
    assert "current@5" in payload["speedup_fair_legacy_to_lazy"]
    if vector_available():
        assert "current@5" in payload["speedup_fair_lazy_to_vector"]
        assert "current@5" in payload["speedup_fair_vector_to_parallel"]
        assert "current@5" in payload["speedup_tcp_lazy_to_vector"]
    assert all(cell["peak_rss_mb"] > 0 for cell in payload["cells"])
    assert all(cell["workers"] >= 1 for cell in payload["cells"])
    # Format 5: per-cell phase buckets and the fair-cell floor table.
    assert all("phases" in cell for cell in payload["cells"])
    assert all(
        cell["phases"].get("transport", 0.0) > 0.0
        for cell in payload["cells"]
        if cell["transport"] != "latency-only"
    )
    floors = payload["non_transport_floor_fair"]
    assert "lazy@5" in floors
    assert all(value >= 0.0 for value in floors.values())


def test_speedup_at_reads_the_grid_point():
    cells = synthetic_cells()
    # Transport speedups compare lazy-engine cells only.
    assert speedup_at(cells, 90) == 2.0
    assert speedup_at(cells, 9) == 2.0
    assert speedup_at(cells, 42) is None
    assert speedup_at(cells, 90, protocol="ours") is None


def test_engine_speedup_compares_legacy_to_lazy_fair_cells():
    cells = synthetic_cells()
    assert engine_speedup_at(cells, 90) == 4.0
    assert engine_speedup_at(cells, 9) is None  # no legacy cell at N=9
    assert engine_speedups(cells) == [("current", 90, 4.0)]


def test_vector_speedup_compares_lazy_to_vector_fair_cells():
    cells = synthetic_cells()
    assert vector_speedup_at(cells, 90) == 4.0
    assert vector_speedup_at(cells, 9) is None  # no vector cell at N=9
    assert vector_speedups(cells) == [("current", 90, 4.0)]


def test_parallel_speedup_compares_vector_to_parallel_fair_cells():
    cells = synthetic_cells()
    assert parallel_speedup_at(cells, 90) == 2.0
    assert parallel_speedup_at(cells, 9) is None  # no parallel cell at N=9
    assert parallel_speedups(cells) == [("current", 90, 2.0)]


def test_tcp_vector_speedup_compares_tcp_engine_cells():
    cells = synthetic_cells()
    assert vector_speedup_at(cells, 90, transport="tcp") == 2.0
    assert vector_speedup_at(cells, 9, transport="tcp") is None  # no tcp at N=9
    assert tcp_vector_speedups(cells) == [("current", 90, 2.0)]


def test_render_scaling_annotates_speedups():
    text = render_scaling(synthetic_cells())
    assert "N=90 current: latency-only is 2.0x faster than fair" in text
    assert "N=90 current: lazy fair engine is 4.0x faster than legacy" in text
    assert "N=90 current: vector fair engine is 4.0x faster than lazy" in text
    assert "N=90 current: parallel fair engine is 2.00x the vector engine" in text
    assert "N=90 current: vector tcp engine is 2.0x faster than lazy" in text
