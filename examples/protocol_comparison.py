#!/usr/bin/env python3
"""Protocol comparison across bandwidths (a condensed Figure 10).

Runs the three directory protocols over a small bandwidth × relay-count grid
and prints one table per bandwidth, marking the configurations where each
protocol fails — the condensed version of the paper's Figure 10 panels.

The grid fans out over a 2-worker process pool and its results land in an
on-disk cache under ``.sweep-cache/``: run the script twice and the second
run executes zero simulations.

Run with:  python examples/protocol_comparison.py
"""

from repro.experiments import render_figure10, run_figure10
from repro.runtime import ResultCache, SweepExecutor


def main() -> None:
    executor = SweepExecutor(workers=2, cache=ResultCache(".sweep-cache"))
    grid = run_figure10(
        bandwidths_mbps=(50.0, 10.0, 0.5),
        relay_counts=(1000, 8000),
        executor=executor,
    )
    print(render_figure10(grid))
    print()
    print("(%d cells executed, %d served from .sweep-cache/)" % (
        executor.executed_runs, executor.cache_hits,
    ))
    print()
    print("Reading the tables: the current protocol fails once vote transfers no")
    print("longer fit its connection timeouts, the synchronous protocol fails much")
    print("earlier (its vote packages are ~9x larger), and the partial-synchrony")
    print("protocol keeps producing a consensus even at DDoS-level bandwidth,")
    print("merely taking longer.")


if __name__ == "__main__":
    main()
