#!/usr/bin/env python3
"""Protocol comparison across bandwidths (a condensed Figure 10).

Runs the three directory protocols over a small bandwidth × relay-count grid
and prints one table per bandwidth, marking the configurations where each
protocol fails — the condensed version of the paper's Figure 10 panels.

The grid fans out over a 2-worker process pool and its results land in an
on-disk cache under ``.sweep-cache/``: run the script twice and the second
run executes zero simulations.

Run with:  python examples/protocol_comparison.py

Setting ``REPRO_EXAMPLE_QUICK=1`` shrinks the grid for CI smoke tests.
"""

import os

from repro.experiments import render_figure10, run_figure10
from repro.runtime import ResultCache, SweepExecutor

#: CI smoke mode: same code path, small sizes (see tests/examples/).
QUICK = bool(os.environ.get("REPRO_EXAMPLE_QUICK"))


def main() -> None:
    executor = SweepExecutor(
        workers=2,
        cache=ResultCache(".sweep-cache"),
        # Progress per cell: the full grid takes a while and the cells land
        # as they finish, so silence would read as a hang.
        on_result=lambda index, spec, summary, cached: print(
            "  cell %d: %s @ %d relays, %.1f Mbit/s — %s%s"
            % (
                index,
                spec.protocol,
                spec.relay_count,
                spec.bandwidth_mbps,
                "ok" if summary["success"] else "FAIL",
                " (cached)" if cached else "",
            )
        ),
    )
    grid = run_figure10(
        bandwidths_mbps=(50.0, 0.5) if QUICK else (50.0, 10.0, 0.5),
        relay_counts=(500,) if QUICK else (1000, 8000),
        executor=executor,
    )
    print(render_figure10(grid))
    print()
    print("(%d cells executed, %d served from .sweep-cache/)" % (
        executor.executed_runs, executor.cache_hits,
    ))
    print()
    print("Reading the tables: the current protocol fails once vote transfers no")
    print("longer fit its connection timeouts, the synchronous protocol fails much")
    print("earlier (its vote packages are ~9x larger), and the partial-synchrony")
    print("protocol keeps producing a consensus even at DDoS-level bandwidth,")
    print("merely taking longer.")


if __name__ == "__main__":
    main()
