#!/usr/bin/env python3
"""Using the ICPS core directly (without the Tor layer or the simulator).

Interactive Consistency under Partial Synchrony is a general functionality:
``n`` nodes each contribute a document and all correct nodes output the same
document vector, even if up to ``f < n/3`` nodes misbehave and the network
temporarily loses synchrony.  This example runs four ICPS nodes on the local
driver, once in the good case and once with an equivocating Byzantine node,
and checks the four properties of Definition 5.1.

Run with:  python examples/icps_basics.py
"""

from repro.attack.adversary import EquivocatingICPSAdversary
from repro.consensus import LocalDriver
from repro.core import (
    Document,
    ICPSConfig,
    ICPSNode,
    check_agreement,
    check_common_set_validity,
    check_termination,
    check_value_validity,
)
from repro.crypto.keys import KeyPair, KeyRing

NAMES = ("alice", "bob", "carol", "dave")


def build_nodes(byzantine: bool):
    pairs = {name: KeyPair.generate(name, b"example-seed") for name in NAMES}
    ring = KeyRing(pairs.values())
    configs = {
        name: ICPSConfig(node_id=name, nodes=NAMES, delta=5.0, engine="hotstuff")
        for name in NAMES
    }
    nodes = {}
    for name in NAMES:
        if byzantine and name == "dave":
            nodes[name] = EquivocatingICPSAdversary(
                name,
                peers=NAMES,
                keypair=pairs[name],
                document_a=Document.from_text("dave's first story"),
                document_b=Document.from_text("dave's second story"),
            )
        else:
            nodes[name] = ICPSNode(configs[name], ring, pairs[name])
    docs = {name: Document.from_text("relay list of %s" % name, label=name) for name in NAMES}
    return nodes, docs


def run_and_report(title: str, byzantine: bool) -> None:
    nodes, docs = build_nodes(byzantine)
    driver = LocalDriver(nodes, loopback_broadcast=False)
    driver.start(docs)
    driver.run(until=1000)

    correct = [name for name in NAMES if not (byzantine and name == "dave")]
    outputs = {name: nodes[name].output for name in correct}
    print(title)
    print("  termination         :", check_termination(outputs, correct))
    print("  agreement           :", check_agreement(outputs, correct))
    print("  value validity      :", check_value_validity(outputs, docs, correct, gst_zero=not byzantine))
    print("  common-set validity :", check_common_set_validity(outputs, correct, n=4, f=1))
    sample = outputs[correct[0]]
    entries = {
        name: (document.data.decode() if document else "<bottom>")
        for name, document in sorted(sample.documents.items())
    }
    print("  %s's output vector  : %s" % (correct[0], entries))
    print()


def main() -> None:
    run_and_report("Good case (no faults, synchronous network):", byzantine=False)
    run_and_report("With an equivocating Byzantine node (dave):", byzantine=True)


if __name__ == "__main__":
    main()
