#!/usr/bin/env python3
"""Bandwidth planning for directory authorities (Figure 7 + Section 4.3).

Sweeps the relay count and reports how much usable bandwidth an attacked
authority needs for the current directory protocol to survive, compares the
simulation against the closed-form model, and derives the attacker's cost for
each operating point.  This is the analysis an authority operator (or an
attacker) would run to size links and attacks.

Every binary-search probe goes through one shared ``SweepExecutor`` whose
results land in ``.sweep-cache/``, so re-running the planning sweep is free.

Run with:  python examples/bandwidth_planning.py

Setting ``REPRO_EXAMPLE_QUICK=1`` shrinks the sweep for CI smoke tests.
"""

import os

from repro.analysis.bandwidth import analytic_required_bandwidth_mbps, required_bandwidth_mbps
from repro.analysis.reporting import format_table
from repro.attack import AttackCostModel
from repro.runtime import ResultCache, SweepExecutor

#: CI smoke mode: same code path, small sizes (see tests/examples/).
QUICK = bool(os.environ.get("REPRO_EXAMPLE_QUICK"))
RELAY_COUNTS = (1000,) if QUICK else (1000, 4000, 8000)


def main() -> None:
    executor = SweepExecutor(
        cache=ResultCache(".sweep-cache"),
        # Each binary-search probe is one protocol run; narrate them so the
        # sweep is not silent for minutes on a cold cache.
        on_result=lambda index, spec, summary, cached: print(
            "  probe: %d relays @ %.2f Mbit/s — %s%s"
            % (
                spec.relay_count,
                spec.bandwidth_mbps,
                "ok" if summary["success"] else "FAIL",
                " (cached)" if cached else "",
            )
        ),
    )
    rows = []
    for relay_count in RELAY_COUNTS:
        result = required_bandwidth_mbps(
            relay_count,
            tolerance_mbps=2.0 if QUICK else 1.0,
            executor=executor,
        )
        analytic = analytic_required_bandwidth_mbps(relay_count)
        cost = AttackCostModel(required_bandwidth_mbps=result.required_mbps)
        rows.append(
            (
                relay_count,
                "%.1f" % result.required_mbps,
                "%.1f" % analytic,
                "%.0f" % cost.traffic_per_target_mbps,
                "$%.2f" % cost.cost_per_month(),
            )
        )
    print(
        format_table(
            [
                "Relays",
                "Required bandwidth (Mbit/s)",
                "Closed-form model (Mbit/s)",
                "Attack traffic per target (Mbit/s)",
                "Attack cost per month",
            ],
            rows,
            title="Bandwidth requirements of the current protocol and the matching attack cost",
        )
    )
    print()
    print("(%d probe runs executed, %d served from .sweep-cache/)" % (
        executor.executed_runs, executor.cache_hits,
    ))
    print()
    print("A host under volumetric DDoS retains about 0.5 Mbit/s of usable bandwidth,")
    print("far below every requirement above - which is why the attack always works.")


if __name__ == "__main__":
    main()
