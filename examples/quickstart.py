#!/usr/bin/env python3
"""Quickstart: run all three Tor directory protocols on a simulated network.

This script describes a 9-authority, 8,000-relay run (the size of today's Tor
network) as three frozen ``RunSpec`` instances — one per protocol — and
executes them through the ``SweepExecutor``, printing each run's outcome and
latency.  ``workers=2`` fans the runs out over a process pool; results are
bit-identical to a serial run.

Run with:  python examples/quickstart.py

Setting ``REPRO_EXAMPLE_QUICK=1`` shrinks the run for CI smoke tests.
"""

import os

from repro.protocols.runner import scenario_from_spec
from repro.runtime import RunSpec, SweepExecutor

#: CI smoke mode: same code path, small sizes (see tests/examples/).
QUICK = bool(os.environ.get("REPRO_EXAMPLE_QUICK"))

LABELS = {
    "current": "Current Tor directory protocol (v3)",
    "synchronous": "Synchronous protocol (Luo et al.)",
    "ours": "Partial-synchrony protocol (this paper)",
}


def main() -> None:
    base = RunSpec(
        protocol="current",
        relay_count=250 if QUICK else 8000,
        bandwidth_mbps=250.0,
        seed=7,
        max_time=1800.0,
    )
    scenario = scenario_from_spec(base)
    print("Scenario: %d authorities, %d relays, vote size %.2f MB, 250 Mbit/s links" % (
        len(scenario.authorities),
        scenario.relay_count,
        scenario.votes[0].size_bytes / 1e6,
    ))
    print()

    specs = [base.derive(protocol=protocol) for protocol in LABELS]
    executor = SweepExecutor(workers=2)
    for spec, result in zip(specs, executor.run(specs)):
        status = "succeeded" if result.success else "FAILED"
        latency = "%.1f s" % result.latency if result.latency is not None else "n/a"
        print("%-45s %s  (latency: %s, authorities signing: %d/9)" % (
            LABELS[spec.protocol], status, latency, len(result.successful_authorities),
        ))

    print()
    print("All three protocols succeed under benign conditions; see")
    print("examples/ddos_attack_demo.py for what happens under the 5-minute DDoS.")


if __name__ == "__main__":
    main()
