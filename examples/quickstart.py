#!/usr/bin/env python3
"""Quickstart: run all three Tor directory protocols on a simulated network.

This script builds a 9-authority scenario with an 8,000-relay workload (the
size of today's Tor network), runs the current v3 protocol, Luo et al.'s
synchronous protocol, and the paper's partial-synchrony protocol under benign
conditions, and prints each run's outcome and latency.

Run with:  python examples/quickstart.py
"""

from repro.protocols import DirectoryProtocolConfig, build_scenario, run_protocol


def main() -> None:
    config = DirectoryProtocolConfig()
    scenario = build_scenario(relay_count=8000, bandwidth_mbps=250.0, seed=7)
    print("Scenario: %d authorities, %d relays, vote size %.2f MB, 250 Mbit/s links" % (
        len(scenario.authorities),
        scenario.relay_count,
        scenario.votes[0].size_bytes / 1e6,
    ))
    print()

    for protocol, label in (
        ("current", "Current Tor directory protocol (v3)"),
        ("synchronous", "Synchronous protocol (Luo et al.)"),
        ("ours", "Partial-synchrony protocol (this paper)"),
    ):
        result = run_protocol(protocol, scenario, config=config, max_time=1800.0)
        status = "succeeded" if result.success else "FAILED"
        latency = "%.1f s" % result.latency if result.latency is not None else "n/a"
        print("%-45s %s  (latency: %s, authorities signing: %d/9)" % (
            label, status, latency, len(result.successful_authorities),
        ))

    print()
    print("All three protocols succeed under benign conditions; see")
    print("examples/ddos_attack_demo.py for what happens under the 5-minute DDoS.")


if __name__ == "__main__":
    main()
