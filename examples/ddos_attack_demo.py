#!/usr/bin/env python3
"""The headline attack: five minutes of DDoS against five directory authorities.

Reproduces Section 4 of the paper end to end:

1. build the live-network scenario (9 authorities, 8,000 relays, 250 Mbit/s);
2. apply the DDoS model (5 authorities throttled to 0.5 Mbit/s for 300 s);
3. run the current directory protocol and show it fails, printing the
   Figure-1-style authority log;
4. run the paper's partial-synchrony protocol on the same attacked network —
   expressed as a frozen ``RunSpec`` carrying the attack as bandwidth
   overrides — and show it produces a consensus seconds after the attack
   ends;
5. print the stressor-service cost of sustaining the attack ($53.28/month).

Run with:  python examples/ddos_attack_demo.py

Setting ``REPRO_EXAMPLE_QUICK=1`` shrinks the runs for CI smoke tests.
"""

import os

from repro.attack import AttackCostModel, majority_attack_plan
from repro.experiments import run_attack_demo
from repro.runtime import RunSpec, SweepExecutor

#: CI smoke mode: same code path, small sizes (see tests/examples/).
QUICK = bool(os.environ.get("REPRO_EXAMPLE_QUICK"))
RELAY_COUNT = 400 if QUICK else 8000


def main() -> None:
    executor = SweepExecutor()

    print("=== Step 1-3: the current protocol under attack (Figure 1) ===")
    demo = run_attack_demo(relay_count=RELAY_COUNT, executor=executor)
    print("Attack: %d authorities throttled to %.1f Mbit/s for %.0f s" % (
        demo.attack.target_count,
        demo.attack.residual_bandwidth_mbps,
        demo.attack.duration,
    ))
    print("Observer log (%s, an authority that is NOT under attack):" % demo.observer_authority)
    print(demo.log_text)
    print()
    print("Consensus blocked: %s" % demo.attack_succeeded)
    print()

    print("=== Step 4: the partial-synchrony protocol under the same attack ===")
    attack = majority_attack_plan(residual_bandwidth_mbps=0.05)
    spec = RunSpec(
        protocol="ours",
        relay_count=RELAY_COUNT,
        bandwidth_mbps=250.0,
        seed=7,
        max_time=attack.end + 900,
    ).with_overrides(*attack.bandwidth_overrides())
    ours = executor.run_one(spec)
    recovery = ours.latency_from(attack.end)
    print("Partial-synchrony protocol success: %s" % ours.success)
    if recovery is not None:
        print("Consensus available %.1f s after the attack ends "
              "(the synchronous protocols wait ~2100 s for the fallback run)." % recovery)
    print()

    print("=== Step 5: what the attack costs the adversary (Section 4.3) ===")
    cost = AttackCostModel()
    print("Flood traffic per target : %.0f Mbit/s" % cost.traffic_per_target_mbps)
    print("Cost per disrupted run   : $%.3f" % cost.cost_per_run())
    print("Cost per month           : $%.2f" % cost.cost_per_month())


if __name__ == "__main__":
    main()
